// Package fabric simulates the System Area Network: hosts (nodes) with a
// CPU and a network port, connected through a cut-through switch.
//
// The fabric moves Frames. A frame is serialized on the sender's tx link,
// crosses the switch after WireLatency, and is queued in-order at the
// destination node, where the owner of the node's interface (a VIA NIC, or
// the kernel stack driver for the NFS baseline) consumes it and pays
// receive-side costs. Per-link serialization plus the per-node in-order
// queue make N-to-1 congestion (the scaling experiments) emerge naturally:
// many senders can serialize in parallel on their own tx links, but a
// single receiver drains one frame at a time at link rate.
package fabric

import (
	"fmt"

	"dafsio/internal/model"
	"dafsio/internal/sim"
)

// NodeID identifies a host on the fabric.
type NodeID int

// Frame is one unit of transfer on a link (a VIA cell or an Ethernet-like
// packet). Bytes is the wire size including headers; Payload is the typed
// content interpreted by the receiving interface owner.
type Frame struct {
	Src, Dst NodeID
	Bytes    int
	Payload  any
}

// Fabric is the switch plus all attached nodes.
type Fabric struct {
	K     *sim.Kernel
	Prof  *model.Profile
	nodes []*Node

	// freeDeliv pools in-flight frame deliveries: each carries a reusable
	// kernel event bound once to its own deliver action, so the per-frame
	// wire-latency timer allocates nothing in steady state.
	freeDeliv *delivery

	// Wire statistics.
	framesSent int64
	bytesSent  int64
}

// delivery is one frame crossing the switch; it is recycled when the frame
// lands in the destination's receive queue.
type delivery struct {
	fab  *Fabric
	fr   Frame
	dst  *Node
	ev   *sim.Event
	next *delivery // free-list link
}

// deliver hands the frame to the destination's matching interface and
// returns the carrier to the pool.
func (d *delivery) deliver() {
	fr, dst, f := d.fr, d.dst, d.fab
	d.fr.Payload = nil // do not retain the payload through the pool
	d.dst = nil
	d.next = f.freeDeliv
	f.freeDeliv = d
	for _, ifc := range dst.ifaces {
		if ifc.match(fr.Payload) {
			if !ifc.q.TrySend(fr) {
				panic("fabric: unbounded queue refused frame")
			}
			return
		}
	}
	// No claimant: dropped on the floor.
}

// New creates an empty fabric. The profile must be valid.
func New(k *sim.Kernel, prof *model.Profile) *Fabric {
	if bad := prof.Validate(); len(bad) != 0 {
		panic(fmt.Sprintf("fabric: invalid profile %q: %v", prof.Name, bad))
	}
	return &Fabric{K: k, Prof: prof}
}

// Node is a host: one CPU resource and one full-duplex network port shared
// by the interface drivers claimed on it.
type Node struct {
	ID   NodeID
	Name string

	// CPU is the host processor; all software costs on this host are
	// charged here, so Utilization() reports host CPU load.
	CPU *sim.Resource

	fab    *Fabric
	txLink *sim.Resource
	rxLink *sim.Resource
	ifaces []*Iface
}

// Iface is one driver's claim on a node's port: arriving frames are
// demultiplexed to the first interface whose match accepts the payload
// (a VIA NIC matches its cells, the kernel stack its packets), modeling
// protocol dispatch on a shared physical port.
type Iface struct {
	Owner string

	node  *Node
	match func(payload any) bool
	q     *sim.Chan[Frame]
}

// AddNode creates a host attached to the fabric.
func (f *Fabric) AddNode(name string) *Node {
	n := &Node{
		ID:     NodeID(len(f.nodes)),
		Name:   name,
		fab:    f,
		CPU:    sim.NewResource(f.K, name+".cpu", f.Prof.CPUCores),
		txLink: sim.NewResource(f.K, name+".tx", 1),
		rxLink: sim.NewResource(f.K, name+".rx", 1),
	}
	f.nodes = append(f.nodes, n)
	return n
}

// Node returns the node with the given id.
func (f *Fabric) Node(id NodeID) *Node { return f.nodes[int(id)] }

// Nodes returns all nodes in creation order.
func (f *Fabric) Nodes() []*Node { return f.nodes }

// FramesSent reports the cumulative frame count on the wire.
func (f *Fabric) FramesSent() int64 { return f.framesSent }

// BytesSent reports the cumulative bytes on the wire.
func (f *Fabric) BytesSent() int64 { return f.bytesSent }

// Claim registers a driver on the node's port. match selects the frame
// payloads this driver consumes; an owner name may be claimed only once per
// node. Frames no claimed interface matches are dropped.
func (n *Node) Claim(owner string, match func(payload any) bool) *Iface {
	for _, ifc := range n.ifaces {
		if ifc.Owner == owner {
			panic(fmt.Sprintf("fabric: node %s interface %q claimed twice", n.Name, owner))
		}
	}
	ifc := &Iface{Owner: owner, node: n, match: match, q: sim.NewChan[Frame](n.fab.K, 0)}
	n.ifaces = append(n.ifaces, ifc)
	return ifc
}

// Send transmits a frame from this node: it serializes on the tx link in
// the caller's (driver) process, then delivers to the destination's receive
// queue after the wire latency. Frames between a given pair arrive in the
// order sent.
func (n *Node) Send(p *sim.Proc, fr Frame) {
	if fr.Bytes <= 0 {
		panic("fabric: frame with non-positive size")
	}
	if int(fr.Dst) < 0 || int(fr.Dst) >= len(n.fab.nodes) {
		panic("fabric: bad destination node")
	}
	fr.Src = n.ID
	f := n.fab
	n.txLink.Use(p, 1, sim.TransferTime(int64(fr.Bytes), f.Prof.LinkBandwidth))
	f.framesSent++
	f.bytesSent += int64(fr.Bytes)
	d := f.freeDeliv
	if d != nil {
		f.freeDeliv = d.next
		d.next = nil
	} else {
		d = &delivery{fab: f}
		d.ev = f.K.NewEvent(d.deliver)
	}
	d.fr = fr
	d.dst = f.nodes[int(fr.Dst)]
	f.K.AfterEvent(d.ev, f.Prof.WireLatency)
}

// Recv blocks the driver process until a frame for this interface is
// available, then pays the receive-link serialization for it (cut-through:
// the rx link is busy while the frame's tail arrives). ok is false if the
// queue was closed.
func (i *Iface) Recv(p *sim.Proc) (Frame, bool) {
	fr, ok := i.q.Recv(p)
	if !ok {
		return Frame{}, false
	}
	n := i.node
	n.rxLink.Use(p, 1, sim.TransferTime(int64(fr.Bytes), n.fab.Prof.LinkBandwidth))
	return fr, true
}

// Profile returns the fabric's cost model.
func (n *Node) Profile() *model.Profile { return n.fab.Prof }

// Compute charges d of CPU time to this host in the calling process.
func (n *Node) Compute(p *sim.Proc, d sim.Time) {
	if d <= 0 {
		return
	}
	n.CPU.Use(p, 1, d)
}

// CopyMem charges the CPU time to copy nbytes through this host's memory
// system (the cost kernel-path I/O pays per copy).
func (n *Node) CopyMem(p *sim.Proc, nbytes int) {
	n.Compute(p, n.fab.Prof.CopyTime(nbytes))
}

// String implements fmt.Stringer.
func (n *Node) String() string { return fmt.Sprintf("node(%d,%s)", n.ID, n.Name) }
