package bench

import (
	"strconv"
	"strings"
	"testing"
)

// parse pulls a numeric cell out of a table.

func cellOf(t *testing.T, rows [][]string, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSuffix(rows[row][col], "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, rows[row][col], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
		if ByID(e.ID) == nil {
			t.Fatalf("ByID(%s) = nil", e.ID)
		}
	}
	if len(All) != 20 {
		t.Fatalf("expected 20 experiments, have %d", len(All))
	}
	if ByID("T99") != nil {
		t.Fatal("ByID invented an experiment")
	}
}

// TestT1Shape validates the transport calibration: single-digit-to-teens
// microsecond small-message latency and near-link-rate peak bandwidth.
func TestT1Shape(t *testing.T) {
	tbl := T1RawVIA()
	if len(tbl.Rows) < 5 {
		t.Fatalf("too few rows: %d", len(tbl.Rows))
	}
	smallLat := cellOf(t, tbl.Rows, 0, 1)
	if smallLat < 4 || smallLat > 15 {
		t.Errorf("8B one-way latency %.1fus out of cLAN range", smallLat)
	}
	last := len(tbl.Rows) - 1
	peak := cellOf(t, tbl.Rows, last, 2)
	if peak < 80 || peak > 160 {
		t.Errorf("peak send bandwidth %.1f MB/s out of range", peak)
	}
	// Bandwidth must be monotone nondecreasing with size (within 1%).
	for i := 1; i <= last; i++ {
		if cellOf(t, tbl.Rows, i, 2) < cellOf(t, tbl.Rows, i-1, 2)*0.99 {
			t.Errorf("send bandwidth not monotone at row %d", i)
		}
	}
}

// TestT4Shape validates the paper's central claim in the harness itself:
// DAFS client CPU per byte is at least 10x below NFS.
func TestT4Shape(t *testing.T) {
	tbl := T4CPUOverhead()
	dafsRead := cellOf(t, tbl.Rows, 0, 2) // cpu ms/MB
	nfsRead := cellOf(t, tbl.Rows, 2, 2)
	if nfsRead < 10*dafsRead {
		t.Errorf("CPU gap too small: dafs=%.2f nfs=%.2f ms/MB", dafsRead, nfsRead)
	}
	dafsBW := cellOf(t, tbl.Rows, 0, 1)
	nfsBW := cellOf(t, tbl.Rows, 2, 1)
	if dafsBW <= nfsBW {
		t.Errorf("DAFS read bandwidth %.1f not above NFS %.1f", dafsBW, nfsBW)
	}
}

// TestT8Shape validates that the registration cache always helps and helps
// small transfers most.
func TestT8Shape(t *testing.T) {
	tbl := T8RegCache()
	var prev float64 = 1e9
	for i := range tbl.Rows {
		sp := cellOf(t, tbl.Rows, i, 3)
		if sp < 1.0 {
			t.Errorf("row %d: cache slowdown %.2fx", i, sp)
		}
		if sp > prev*1.10 {
			t.Errorf("row %d: speedup grew with size (%.2f after %.2f)", i, sp, prev)
		}
		prev = sp
	}
}

// TestDeterministicTables re-runs a fast experiment and requires identical
// output.
func TestDeterministicTables(t *testing.T) {
	a := T9Overlap().String()
	b := T9Overlap().String()
	if a != b {
		t.Fatalf("experiment not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestT15Deterministic holds the striped driver's parallel stripe dispatch
// to the same discipline: two runs of T15 must print byte-identical
// tables. -short runs a reduced grid that still exercises multi-client,
// multi-server dispatch.
func TestT15Deterministic(t *testing.T) {
	run := func() string { return T15StripedScaling().String() }
	if testing.Short() {
		run = func() string { return t15Table([]int{2}, []int{2}).String() }
	}
	a := run()
	b := run()
	if a != b {
		t.Fatalf("T15 not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestT18WideShape holds the wide grid (T15 at 10k-proc populations) to
// the same discipline at a cheap point: two runs of a 16x16 cell must
// agree exactly, and (full mode) 64 servers must clearly beat 16 at 64
// clients — the whole reason to go wide.
func TestT18WideShape(t *testing.T) {
	a := t18Point(16, 16, false)
	if b := t18Point(16, 16, false); a != b {
		t.Fatalf("T18 point not deterministic: %v vs %v", a, b)
	}
	if testing.Short() {
		t.Skip("wide T18 points in -short mode")
	}
	narrow := t18Point(64, 16, false)
	wide := t18Point(64, 64, false)
	if wide < 1.5*narrow {
		t.Errorf("wide striping does not scale: 16 servers %.1f MB/s, 64 servers %.1f MB/s (< 1.5x)", narrow, wide)
	}
}

// TestT15Shape validates the refactor's point: at 8 clients, 4 servers
// must deliver at least 3x the single-server read ceiling, and adding
// servers must never hurt.
func TestT15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full T15 grid in -short mode")
	}
	tbl := t15Table([]int{8}, []int{1, 4})
	one := cellOf(t, tbl.Rows, 0, 1)
	four := cellOf(t, tbl.Rows, 0, 2)
	if four < 3*one {
		t.Errorf("striping does not scale: 1 server %.1f MB/s, 4 servers %.1f MB/s (< 3x)", one, four)
	}
}
