package stats

import (
	"strings"
	"testing"

	"dafsio/internal/sim"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:      "T9",
		Title:   "demo",
		Note:    "a note",
		Columns: []string{"size", "MB/s"},
	}
	tb.AddRow("4KB", "103.5")
	tb.AddRow("64KB", "9.1")
	out := tb.String()
	for _, want := range []string{"T9 — demo", "a note", "size", "MB/s", "4KB", "103.5", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAddRowArityPanics(t *testing.T) {
	tb := &Table{ID: "x", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on wrong arity")
		}
	}()
	tb.AddRow("only-one")
}

func TestMBps(t *testing.T) {
	// 1e6 bytes in 1 second = 1 MB/s.
	if got := MBps(1e6, sim.Second); got != 1 {
		t.Fatalf("MBps = %v", got)
	}
	if got := MBps(100, 0); got != 0 {
		t.Fatalf("MBps zero time = %v", got)
	}
}

func TestFormatters(t *testing.T) {
	if Us(1500) != "1.5" {
		t.Errorf("Us = %q", Us(1500))
	}
	if Pct(0.123) != "12.3%" {
		t.Errorf("Pct = %q", Pct(0.123))
	}
	if Ratio(2.5) != "2.50x" {
		t.Errorf("Ratio = %q", Ratio(2.5))
	}
	cases := map[int64]string{512: "512B", 4096: "4KB", 1 << 20: "1MB", 1500: "1500B"}
	for n, want := range cases {
		if got := Size(n); got != want {
			t.Errorf("Size(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestChartFromTableAndRender(t *testing.T) {
	tb := &Table{ID: "T2", Columns: []string{"size", "dafs", "nfs", "note"}}
	tb.AddRow("512B", "11.9", "4.0", "n/a")
	tb.AddRow("32KB", "70.9", "41.3", "n/a")
	tb.AddRow("1MB", "96.1", "54.8", "n/a")
	ch := ChartFromTable(tb)
	if ch == nil {
		t.Fatal("no chart derived")
	}
	if len(ch.Series) != 2 { // "note" column is not numeric
		t.Fatalf("series %d", len(ch.Series))
	}
	out := ch.String()
	for _, want := range []string{"T2 (figure)", "o=dafs", "x=nfs", "512B", "1MB", "96 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestChartFromTableNeedsRowsAndNumbers(t *testing.T) {
	tb := &Table{ID: "x", Columns: []string{"a", "b"}}
	tb.AddRow("one", "not-a-number")
	tb.AddRow("two", "also-not")
	if ChartFromTable(tb) != nil {
		t.Fatal("chart from non-numeric table")
	}
	single := &Table{ID: "y", Columns: []string{"a", "b"}}
	single.AddRow("one", "1.0")
	if ChartFromTable(single) != nil {
		t.Fatal("chart from single-row table")
	}
}

func TestChartSuffixedCells(t *testing.T) {
	tb := &Table{ID: "s", Columns: []string{"x", "pct", "ratio"}}
	tb.AddRow("a", "50.0%", "1.50x")
	tb.AddRow("b", "99.0%", "2.25x")
	ch := ChartFromTable(tb)
	if ch == nil || len(ch.Series) != 2 {
		t.Fatalf("suffixed cells not parsed: %+v", ch)
	}
	if ch.Series[0].Y[1] != 99.0 || ch.Series[1].Y[1] != 2.25 {
		t.Fatalf("values wrong: %+v", ch.Series)
	}
}
