package mpiio

import (
	"bytes"
	"fmt"
	"testing"

	"dafsio/internal/cluster"
	"dafsio/internal/layout"
	"dafsio/internal/sim"
)

// TestStripedStress hammers one shared StripedDAFSDriver from many
// simulated processes at once: every worker mixes inline and direct
// traffic on a private file (contending for the shared session pool,
// credits, and registration cache), then the pack converges on one shared
// file — first disjoint extents that must survive verbatim, then fully
// overlapping writes whose winner is decided by completion order. The
// schedule runs twice and must reproduce both the final simulated time
// and the shared file's bytes; under `go test -race` it also exercises
// the kernel's goroutine handoffs on every contended wait point.
func TestStripedStress(t *testing.T) {
	const (
		servers = 4
		stripe  = int64(16 << 10) // fragments above MaxInline: direct path
		workers = 8
		iters   = 3
		block   = 4 << 10 // per-worker extent in the shared file
	)
	run := func() (sim.Time, []byte) {
		c := cluster.New(cluster.Config{Clients: 1, Servers: servers, DAFS: true})
		var shared []byte
		c.K.Spawn("boss", func(p *sim.Proc) {
			pool, err := c.DialDAFSAll(p, 0, nil)
			if err != nil {
				t.Error(err)
				return
			}
			drv := NewStripedDAFSDriver(pool, layout.Striping{StripeSize: stripe, Width: servers})
			sh, err := drv.Open(p, "shared", ModeRdWr|ModeCreate)
			if err != nil {
				t.Error(err)
				return
			}
			wg := sim.NewWaitGroup(c.K, workers)
			for w := 0; w < workers; w++ {
				w := w
				c.K.Spawn(fmt.Sprintf("worker%d", w), func(p *sim.Proc) {
					defer wg.Done()
					h, err := drv.Open(p, fmt.Sprintf("priv%d", w), ModeRdWr|ModeCreate)
					if err != nil {
						t.Errorf("worker %d: open: %v", w, err)
						return
					}
					small := bytes.Repeat([]byte{byte(w + 1)}, 512)
					large := bytes.Repeat([]byte{byte(w + 101)}, int(stripe)*servers)
					for it := 0; it < iters; it++ {
						off := int64(it) * stripe * int64(servers)
						if _, err := h.WriteContig(p, off+int64(w), small); err != nil {
							t.Errorf("worker %d: inline write: %v", w, err)
							return
						}
						if _, err := h.WriteContig(p, off, large); err != nil {
							t.Errorf("worker %d: direct write: %v", w, err)
							return
						}
						got := make([]byte, len(large))
						if _, err := h.ReadContig(p, off, got); err != nil {
							t.Errorf("worker %d: read: %v", w, err)
							return
						}
						if !bytes.Equal(got, large) {
							t.Errorf("worker %d: iter %d: private data corrupted", w, it)
							return
						}
						if err := h.Sync(p); err != nil {
							t.Errorf("worker %d: sync: %v", w, err)
							return
						}
						if _, err := h.Size(p); err != nil {
							t.Errorf("worker %d: size: %v", w, err)
							return
						}
					}
					if err := h.Close(p); err != nil {
						t.Errorf("worker %d: close: %v", w, err)
						return
					}
					// Disjoint extent of the shared file: must survive intact.
					mine := bytes.Repeat([]byte{byte(w + 1)}, block)
					if _, err := sh.WriteContig(p, int64(w)*block, mine); err != nil {
						t.Errorf("worker %d: shared write: %v", w, err)
						return
					}
					// Overlapping region past the disjoint extents: the
					// deterministic schedule decides whose bytes stick.
					clash := bytes.Repeat([]byte{byte(w + 201)}, block)
					if _, err := sh.WriteContig(p, int64(workers)*block, clash); err != nil {
						t.Errorf("worker %d: overlapping write: %v", w, err)
						return
					}
					if err := sh.Sync(p); err != nil {
						t.Errorf("worker %d: shared sync: %v", w, err)
					}
				})
			}
			wg.Wait(p)
			total := (workers + 1) * block
			shared = make([]byte, total)
			if _, err := sh.ReadContig(p, 0, shared); err != nil {
				t.Error(err)
				return
			}
			for w := 0; w < workers; w++ {
				want := bytes.Repeat([]byte{byte(w + 1)}, block)
				if !bytes.Equal(shared[w*block:(w+1)*block], want) {
					t.Errorf("worker %d extent corrupted by concurrent traffic", w)
				}
			}
			if err := sh.Close(p); err != nil {
				t.Error(err)
			}
		})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.K.Now(), shared
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 {
		t.Errorf("simulated time not reproducible: %v vs %v", t1, t2)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("shared file contents not reproducible across runs")
	}
}
