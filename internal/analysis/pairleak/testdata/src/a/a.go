// Fixture for the pairleak pass: acquire/release pairing across branches,
// loops, defers, early returns, panic paths, and ownership escapes.
package a

import (
	"dafsio/internal/sim"
	"dafsio/internal/via"
)

type node struct {
	res *sim.Resource
	nic *via.NIC
	ch  *sim.Chan[int]
}

type holder struct {
	reg *via.Region
}

// Balanced resource pair: clean.
func okResourcePair(p *sim.Proc, n *node) {
	n.res.Acquire(p, 1)
	n.res.Release(1)
}

// Resource units acquired and never released.
func badResourceLeak(p *sim.Proc, n *node) {
	n.res.Acquire(p, 1) // want `resource units acquired on n\.res is not released on every path to return`
}

// Released on the happy path, leaked on the early return.
func badResourceEarlyReturn(p *sim.Proc, n *node, c bool) {
	n.res.Acquire(p, 1) // want `resource units acquired on n\.res is not released on every path to return`
	if c {
		return
	}
	n.res.Release(1)
}

// A deferred release covers every exit, early returns included.
func okDeferRelease(p *sim.Proc, n *node, c bool) {
	n.res.Acquire(p, 1)
	defer n.res.Release(1)
	if c {
		return
	}
	n.ch.Send(p, 1)
}

// The panic path is not a leak exit: a panicking proc abandons the run.
func okPanicPath(p *sim.Proc, n *node, c bool) {
	n.res.Acquire(p, 1)
	if c {
		panic("boom")
	}
	n.res.Release(1)
}

// Registered region released on every path: clean.
func okRegionPair(p *sim.Proc, n *node, buf []byte) {
	r := n.nic.Register(p, buf)
	n.nic.Deregister(p, r)
}

// Registered region leaked on one branch of a multi-return.
func badRegionMultiReturn(p *sim.Proc, n *node, buf []byte, c bool) (int, error) {
	r := n.nic.Register(p, buf) // want `registered region from NIC\.Register is not released on every path to return`
	if c {
		return 0, nil
	}
	n.nic.Deregister(p, r)
	return len(buf), nil
}

// The result is dropped on the floor: leaked the instant it is acquired.
func badRegionDropped(p *sim.Proc, n *node, buf []byte) {
	n.nic.Register(p, buf) // want `result of acquire dropped: registered region from NIC\.Register is never released`
}

// Returned: ownership moves to the caller — clean here.
func okRegionReturned(p *sim.Proc, n *node, buf []byte) *via.Region {
	r := n.nic.Register(p, buf)
	return r
}

// Stored into a struct that outlives the call: the holder owns it.
func okRegionEscapesToStruct(p *sim.Proc, n *node, buf []byte) *holder {
	r := n.nic.Register(p, buf)
	return &holder{reg: r}
}

// Handed to another function: the callee's obligation now.
func consume(p *sim.Proc, n *node, r *via.Region) {
	n.nic.Deregister(p, r)
}

func okRegionHandedOff(p *sim.Proc, n *node, buf []byte) {
	r := n.nic.Register(p, buf)
	consume(p, n, r)
}

// Loop re-acquire: the previous region can never be released again once
// the variable is overwritten on the back edge.
func badLoopReacquire(p *sim.Proc, n *node, bufs [][]byte) {
	var r *via.Region
	for _, buf := range bufs {
		r = n.nic.Register(p, buf) // want `registered region from NIC\.Register is reacquired while a previous acquisition may still be unreleased`
	}
	n.nic.Deregister(p, r)
}

// Balanced per iteration: clean.
func okLoopBalanced(p *sim.Proc, n *node, bufs [][]byte) {
	for _, buf := range bufs {
		r := n.nic.Register(p, buf)
		n.nic.Deregister(p, r)
	}
}

// Aggregate pattern: every element registered into a slice, every element
// released through the range alias — clean.
func okSliceAggregate(p *sim.Proc, n *node, bufs [][]byte) {
	regs := make([]*via.Region, len(bufs))
	for i, buf := range bufs {
		regs[i] = n.nic.Register(p, buf)
	}
	for _, r := range regs {
		n.nic.Deregister(p, r)
	}
}

// Aggregate leak: the error path returns without releasing the slice.
func badSliceAggregate(p *sim.Proc, n *node, bufs [][]byte, c bool) error {
	regs := make([]*via.Region, len(bufs))
	for i, buf := range bufs {
		regs[i] = n.nic.Register(p, buf) // want `registered region from NIC\.Register is not released on every path to return`
	}
	if c {
		return errBoom
	}
	for _, r := range regs {
		n.nic.Deregister(p, r)
	}
	return nil
}

// A documented ownership transfer: the peer proc releases the units.
func okIgnored(p *sim.Proc, n *node) {
	//mpiolint:ignore pairleak units released by the consumer proc on delivery
	n.res.Acquire(p, 1)
	n.ch.Send(p, 1)
}

type boomErr struct{}

func (boomErr) Error() string { return "boom" }

var errBoom error = boomErr{}
