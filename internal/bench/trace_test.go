package bench

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"dafsio/internal/sim"
	"dafsio/internal/trace"
)

// TestTracedDeterminism pins the headline observability guarantee: running
// the same traced experiment twice produces byte-identical Chrome exports
// and identical report tables.
func TestTracedDeterminism(t *testing.T) {
	r1 := TracedT15(2, 2)
	r2 := TracedT15(2, 2)
	var b1, b2 bytes.Buffer
	if err := r1.Tracer.WriteChrome(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Tracer.WriteChrome(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("two T15 runs produced different Chrome traces")
	}
	if a, b := r1.BreakdownTable().String(), r2.BreakdownTable().String(); a != b {
		t.Errorf("breakdown tables differ:\n%s\n---\n%s", a, b)
	}
	if a, b := r1.Tracer.HistTable().String(), r2.Tracer.HistTable().String(); a != b {
		t.Error("histogram tables differ")
	}
	if r1.MBps != r2.MBps || r1.Elapsed() != r2.Elapsed() {
		t.Errorf("run metrics differ: %v/%v vs %v/%v", r1.MBps, r1.Elapsed(), r2.MBps, r2.Elapsed())
	}
}

// TestTracedMatchesUntraced pins that tracing is purely observational: the
// measured bandwidth is bit-identical with the tracer on or off.
func TestTracedMatchesUntraced(t *testing.T) {
	if traced, plain := TracedT15(2, 2).MBps, stripePoint(2, 2, false); traced != plain {
		t.Errorf("T15 bandwidth: traced %v != untraced %v", traced, plain)
	}
	if traced, plain := TracedT6().MBps, collPoint(2048, methodTwoPhase); traced != plain {
		t.Errorf("T6 bandwidth: traced %v != untraced %v", traced, plain)
	}
}

// TestMPIIOSpansTileMeasuredWindow pins the span accounting against the
// experiment clock: within the measured window each client issues its MPI-IO
// operations back-to-back, so per track the operation spans must not overlap
// and must sum exactly to (last op end - window start); the latest op end
// must equal the measured end. Any double-counted or lost span time breaks
// the equality.
func TestMPIIOSpansTileMeasuredWindow(t *testing.T) {
	for _, r := range []TracedResult{TracedT15(1, 2), TracedT15(2, 2)} {
		byTrack := make(map[string][]trace.Span)
		for _, s := range r.Tracer.Spans() {
			if s.Layer != trace.LayerMPIIO || s.Start < r.Start {
				continue // warm-up ops before the ready barrier
			}
			byTrack[s.Track] = append(byTrack[s.Track], s)
		}
		if len(byTrack) == 0 {
			t.Fatal("no MPI-IO spans in the measured window")
		}
		var latest sim.Time
		for track, spans := range byTrack {
			sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
			var sum sim.Time
			for i, s := range spans {
				if s.End < s.Start {
					t.Fatalf("%s: open MPI-IO span %+v", track, s)
				}
				if i > 0 && s.Start < spans[i-1].End {
					t.Errorf("%s: spans %d/%d overlap", track, i-1, i)
				}
				sum += s.Dur()
			}
			if spans[0].Start != r.Start {
				t.Errorf("%s: first measured op starts at %v, window opens at %v", track, spans[0].Start, r.Start)
			}
			last := spans[len(spans)-1].End
			if sum != last-r.Start {
				t.Errorf("%s: spans sum to %v, window start to last end is %v", track, sum, last-r.Start)
			}
			if last > latest {
				latest = last
			}
		}
		if latest != r.End {
			t.Errorf("latest op end %v != measured end %v", latest, r.End)
		}
	}
}

// TestTracedT15ChromeTracks checks the export is valid trace-event JSON with
// one track per participating node (2 clients, 2 servers).
func TestTracedT15ChromeTracks(t *testing.T) {
	r := TracedT15(2, 2)
	var buf bytes.Buffer
	if err := r.Tracer.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome JSON: %v", err)
	}
	tracks := make(map[string]bool)
	var complete int
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			tracks[e.Args["name"].(string)] = true
		}
		if e.Ph == "X" {
			complete++
		}
	}
	for _, want := range []string{"client0", "client1", "server", "server1"} {
		if !tracks[want] {
			t.Errorf("no track for %s (have %v)", want, tracks)
		}
	}
	if complete == 0 {
		t.Error("no complete events")
	}
}

// TestTracedT1T6Smoke: the other two wired experiments produce non-empty
// breakdowns whose tables render.
func TestTracedT1T6Smoke(t *testing.T) {
	for _, r := range []TracedResult{TracedT1(), TracedT6()} {
		if r.Elapsed() <= 0 {
			t.Fatalf("%s: empty measured window", r.ID)
		}
		b := r.Tracer.ComputeBreakdown()
		if b.Roots == 0 || b.RootTime <= 0 {
			t.Errorf("%s: no closed root spans (%+v)", r.ID, b)
		}
		out := r.BreakdownTable().String()
		if !strings.Contains(out, "wire") || !strings.Contains(out, "root op time") {
			t.Errorf("%s: breakdown table incomplete:\n%s", r.ID, out)
		}
	}
}
