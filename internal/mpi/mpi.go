// Package mpi is a minimal MPI runtime for the simulation: ranks are
// simulated processes, point-to-point messaging runs over VIA (sharing each
// node's NIC with the DAFS client, the way MVICH-era MPI implementations
// shared the SAN), and the collectives needed by two-phase collective I/O
// are built on top.
//
// The transport follows the classic two-protocol design:
//
//   - Eager (small messages): the payload is copied through pre-registered
//     bounce buffers on both sides — one CPU copy per end.
//   - Rendezvous (large messages): the sender registers the user buffer and
//     sends a ready-to-send control message; the receiver registers its own
//     buffer, RDMA-reads the payload directly, and returns a FIN. Zero
//     copies, at the price of registration costs (amortizable).
//
// Flow control uses per-pair credits. Credit return is modeled as free
// (piggybacked), which is the one deliberate simplification; everything
// else — envelopes, matching with unexpected queues, wildcard receives,
// non-overtaking order — is implemented.
package mpi

import (
	"fmt"

	"dafsio/internal/model"
	"dafsio/internal/sim"
	"dafsio/internal/via"
)

// Wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Tag space: application tags must stay below reservedTagBase; ReserveTags
// hands out blocks in [reservedTagBase, collTagBase) for library services
// (e.g. MPI-IO shared file pointers), and collectives use tags above
// collTagBase.
const (
	reservedTagBase = 1 << 19
	collTagBase     = 1 << 20
)

const (
	eagerCredits = 16
	envLen       = 32
)

// message kinds on the wire.
const (
	kEager uint8 = iota
	kRTS
	kFIN
)

// World is a set of ranks with all-to-all connectivity.
type World struct {
	k     *sim.Kernel
	prof  *model.Profile
	ranks []*Rank
	// EagerMax is the largest payload sent through bounce buffers;
	// larger messages use rendezvous. Exposed for ablation experiments.
	EagerMax int

	reservedTags int
}

// NewWorld builds a world with one rank per NIC and connects every pair.
// MPI-internal bounce pools are pre-registered (MPI_Init behavior), so
// world construction itself is cost-free in virtual time.
func NewWorld(nics []*via.NIC) *World {
	if len(nics) == 0 {
		panic("mpi: empty world")
	}
	prov := nics[0].Provider()
	w := &World{k: prov.K, prof: prov.Prof, EagerMax: 16 * 1024}
	for i, nic := range nics {
		r := &Rank{
			world: w, id: i, nic: nic,
			cq:    nic.NewCQ(fmt.Sprintf("%s.mpi.cq", nic.Node.Name)),
			pairs: make(map[int]*pair),
			fins:  make(map[uint64]*sim.Future[struct{}]),
		}
		w.ranks = append(w.ranks, r)
	}
	for i := range w.ranks {
		for j := i + 1; j < len(w.ranks); j++ {
			connectPair(w.ranks[i], w.ranks[j])
		}
	}
	for _, r := range w.ranks {
		r := r
		w.k.SpawnDaemon(fmt.Sprintf("mpi.rank%d.progress", r.id), r.progress)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// ReserveTags returns the base of a block of n previously unused service
// tags. The caller must ensure a single rank allocates and distributes the
// value (the usual pattern: rank 0 reserves, then broadcasts).
func (w *World) ReserveTags(n int) int {
	if n <= 0 {
		panic("mpi: ReserveTags needs n > 0")
	}
	base := reservedTagBase + w.reservedTags
	w.reservedTags += n
	if base+n > collTagBase {
		panic("mpi: service tag space exhausted")
	}
	return base
}

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// slot is one registered bounce buffer.
type slot struct {
	reg *via.Region
	off int
	n   int
}

func (s *slot) bytes() []byte { return s.reg.Bytes()[s.off : s.off+s.n] }

// pair is one direction-agnostic endpoint of a rank-to-rank connection.
type pair struct {
	peer     int
	vi       *via.VI
	credits  *sim.Resource    // sender-side credits toward this peer
	sendPool *sim.Chan[*slot] // free send bounce slots
}

// Rank is one MPI process endpoint. All methods must be called from the
// rank's own simulated process (or helpers it spawned on the same node).
type Rank struct {
	world *World
	id    int
	nic   *via.NIC
	cq    *via.CQ
	pairs map[int]*pair

	posted     []*postedRecv
	unexpected []*envelope
	rndvSeq    uint64
	fins       map[uint64]*sim.Future[struct{}]
	collSeq    int
}

// postedRecv is a receive waiting for a match.
type postedRecv struct {
	src, tag int
	buf      []byte
	fut      *sim.Future[RecvStatus]
}

// envelope is a decoded incoming message awaiting a matching receive.
type envelope struct {
	kind  uint8
	src   int
	tag   int
	size  int
	token uint64
	// eager payload (owned copy)
	data []byte
	// rendezvous source memory
	handle via.MemHandle
	offset int
}

// RecvStatus reports a completed receive.
type RecvStatus struct {
	Source int
	Tag    int
	Count  int
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return len(r.world.ranks) }

// NIC returns the rank's VIA NIC.
func (r *Rank) NIC() *via.NIC { return r.nic }

// World returns the world this rank belongs to.
func (r *Rank) World() *World { return r.world }

// Kernel returns the simulation kernel.
func (w *World) Kernel() *sim.Kernel { return w.k }

// slotSize is the bounce buffer size (envelope + eager payload).
func (w *World) slotSize() int { return envLen + w.EagerMax }

// connectPair wires VIs and bounce pools between two ranks.
func connectPair(a, b *Rank) {
	w := a.world
	viA := a.nic.NewVI(a.cq, a.cq)
	viB := b.nic.NewVI(b.cq, b.cq)
	via.Connect(viA, viB)
	mk := func(r *Rank, vi *via.VI, peer int) {
		pr := &pair{
			peer:     peer,
			vi:       vi,
			credits:  sim.NewResource(w.k, fmt.Sprintf("mpi.%d->%d.credits", r.id, peer), eagerCredits),
			sendPool: sim.NewChan[*slot](w.k, 0),
		}
		ss := w.slotSize()
		sendReg := r.nic.RegisterCached(make([]byte, eagerCredits*ss))
		recvReg := r.nic.RegisterCached(make([]byte, eagerCredits*ss))
		for i := 0; i < eagerCredits; i++ {
			pr.sendPool.TrySend(&slot{reg: sendReg, off: i * ss, n: ss})
			rs := &slot{reg: recvReg, off: i * ss, n: ss}
			if err := vi.PrepostRecv(&via.Descriptor{Region: recvReg, Offset: rs.off, Len: rs.n, Ctx: rs}); err != nil {
				panic(err)
			}
		}
		r.pairs[peer] = pr
	}
	mk(a, viA, b.id)
	mk(b, viB, a.id)
}
