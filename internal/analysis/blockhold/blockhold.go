// Package blockhold implements the mpiolint pass that flags may-block
// calls made while holding a sim.Resource — the cooperative-deadlock
// hazard.
//
// The simulator is a cooperative scheduler: a proc parked on a wait FIFO
// (Chan.Recv on an empty channel, Resource.Acquire on an exhausted
// resource, Future.Get, WaitGroup.Wait...) wakes only when *another proc*
// acts. A proc that parks while holding Resource units can therefore
// deadlock the run — the procs that would wake it may be the ones queued
// behind the units it holds — and even when it does not deadlock, it
// inflates every latency the experiments report by the time it slept.
//
// The pass runs a union-join dataflow over each function's control-flow
// graph (internal/analysis/cfg): the may-held set of Resource receivers
// grows at Resource.Acquire, shrinks at a matching Resource.Release, and
// every call whose callee is in the interprocedural may-park set
// (internal/analysis/callgraph, anchored at sim's pushWaiter) is reported
// when the set can be non-empty. Timer waits (Proc.Wait / WaitUntil) only
// self-wake through the event queue and are deliberately not in the park
// set — holding a resource across a modeled service time is exactly what
// Resource.Use does.
//
// Known imprecision, chosen deliberately:
//
//   - Receivers are matched by expression text (d.ioRes, c.credits), so
//     aliasing a resource through a second variable defeats the release
//     match and widens the window — conservative.
//   - A deferred Release does not close the window: the deferred call
//     runs at return, after any park in the body, which is exactly the
//     hazard, so `defer r.Release(n)` keeps the window open to Exit.
//   - An acquire whose release lives in another function (ownership
//     handed to a peer proc) holds to Exit here. A documented
//     `//mpiolint:ignore blockhold <why>` on the acquire records the
//     transfer and opens no window at all, so one directive at the
//     transfer site covers every downstream call it would have flagged.
package blockhold

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"dafsio/internal/analysis"
	"dafsio/internal/analysis/callgraph"
	"dafsio/internal/analysis/cfg"
)

// Analyzer is the blockhold pass.
var Analyzer = &analysis.Analyzer{
	Name: "blockhold",
	Doc:  "flag may-park calls on CFG paths between sim.Resource.Acquire and its Release",
	Run:  run,
}

const (
	acquireKey = callgraph.SimPkgPath + ".Resource.Acquire"
	releaseKey = callgraph.SimPkgPath + ".Resource.Release"
)

func run(pass *analysis.Pass) error {
	moduleParks, err := callgraph.MayPark()
	if err != nil {
		return err
	}
	// Extend reachability into the package under analysis: its functions
	// (fixture packages included) are not in the module graph.
	local := callgraph.Build([]*analysis.Package{{
		Path:  pass.PkgPath(),
		Fset:  pass.Fset,
		Files: pass.Files,
		Types: pass.Pkg,
		Info:  pass.TypesInfo,
	}})
	localParks := local.ReachersOf(func(k string) bool {
		return moduleParks[k] || callgraph.IsParkAnchor(k)
	})
	parks := func(fn *types.Func) bool {
		k := callgraph.FuncKey(fn)
		return moduleParks[k] || localParks[k] || callgraph.IsParkAnchor(k)
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, parks)
		}
	}
	return nil
}

// event is one held-set-relevant action inside a basic block, in source
// order.
type event struct {
	kind   int // evAcquire, evRelease, evPark
	token  string
	callee string // evPark: display name of the parking callee
	pos    token.Pos
}

const (
	evAcquire = iota
	evRelease
	evPark
)

// checkFunc runs the may-held dataflow over one function.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, parks func(*types.Func) bool) {
	closureParks := closureParkVars(pass.TypesInfo, fd, parks)
	g := cfg.New(fd.Body)
	events := make([][]event, len(g.Blocks))
	any := false
	for _, blk := range g.Blocks {
		evs := blockEvents(pass.TypesInfo, blk, parks, closureParks)
		// An acquire annotated with an ignore directive is a documented
		// ownership transfer: it opens no window at all.
		kept := evs[:0]
		for _, ev := range evs {
			if ev.kind == evAcquire && pass.IgnoredAt(ev.pos) {
				continue
			}
			kept = append(kept, ev)
		}
		events[blk.Index] = kept
		if len(events[blk.Index]) > 0 {
			any = true
		}
	}
	if !any {
		return
	}

	// Union-join fixpoint: in[b] = ∪ out[pred], out[b] = step(b, in[b]).
	order := reachable(g)
	preds := map[*cfg.Block][]*cfg.Block{}
	for _, blk := range order {
		for _, s := range blk.Succs {
			preds[s] = append(preds[s], blk)
		}
	}
	in := make([]map[string]bool, len(g.Blocks))
	out := make([]map[string]bool, len(g.Blocks))
	for changed := true; changed; {
		changed = false
		for _, blk := range order {
			ni := map[string]bool{}
			for _, p := range preds[blk] {
				for tok := range out[p.Index] {
					ni[tok] = true
				}
			}
			no := step(copySet(ni), events[blk.Index], nil)
			if !sameSet(in[blk.Index], ni) || !sameSet(out[blk.Index], no) {
				in[blk.Index], out[blk.Index] = ni, no
				changed = true
			}
		}
	}

	// Reporting sweep, deduplicated across the paths that join at a block.
	seen := map[string]bool{}
	for _, blk := range order {
		step(copySet(in[blk.Index]), events[blk.Index], func(ev event, held map[string]bool) {
			names := make([]string, 0, len(held))
			for tok := range held {
				names = append(names, tok)
			}
			sort.Strings(names)
			key := pass.Fset.Position(ev.pos).String() + "|" + ev.callee
			if seen[key] {
				return
			}
			seen[key] = true
			pass.Reportf(ev.pos,
				"%s may park the proc while holding %s: a cooperative deadlock risk (release before blocking, or document the ownership transfer with //mpiolint:ignore blockhold)",
				ev.callee, strings.Join(names, ", "))
		})
	}
}

// step folds a block's events over a held set, invoking report (when
// non-nil) for each hazardous park.
func step(held map[string]bool, evs []event, report func(event, map[string]bool)) map[string]bool {
	for _, ev := range evs {
		switch ev.kind {
		case evAcquire:
			if len(held) > 0 && report != nil {
				report(ev, held)
			}
			held[ev.token] = true
		case evRelease:
			delete(held, ev.token)
		case evPark:
			if len(held) > 0 && report != nil {
				report(ev, held)
			}
		}
	}
	return held
}

// blockEvents extracts the ordered acquire/release/park events of one
// block. Function-literal interiors are skipped (their bodies execute when
// called, and calls through sole-assignment closure variables are
// classified via closureParks); deferred statements are skipped entirely —
// a deferred call runs at return, so a deferred Release never closes the
// window and a deferred park is out of scope here.
func blockEvents(info *types.Info, blk *cfg.Block, parks func(*types.Func) bool, closureParks map[*types.Var]bool) []event {
	var evs []event
	for _, n := range blk.Nodes {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit, *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				evs = append(evs, classify(info, x, parks, closureParks)...)
			}
			return true
		})
	}
	return evs
}

// classify maps one call expression to its events.
func classify(info *types.Info, call *ast.CallExpr, parks func(*types.Func) bool, closureParks map[*types.Var]bool) []event {
	fn := callgraph.ResolveCallee(info, call)
	if fn == nil {
		// Dynamic call: a closure held in a sole-assignment local still
		// classifies; anything else is invisible (noted imprecision).
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && closureParks[v] {
				return []event{{kind: evPark, callee: id.Name, pos: call.Pos()}}
			}
		}
		return nil
	}
	switch callgraph.FuncKey(fn) {
	case acquireKey:
		return []event{{kind: evAcquire, token: recvText(call), callee: displayName(fn), pos: call.Pos()}}
	case releaseKey:
		return []event{{kind: evRelease, token: recvText(call), pos: call.Pos()}}
	}
	if parks(fn) {
		return []event{{kind: evPark, callee: displayName(fn), pos: call.Pos()}}
	}
	return nil
}

// recvText renders the receiver expression of a method call ("d.ioRes",
// "c.credits") — the held-set token.
func recvText(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X)
	}
	return types.ExprString(call.Fun)
}

// displayName renders a callee compactly: "sim.Chan.Recv", "dafs.Client.start".
func displayName(fn *types.Func) string {
	key := callgraph.FuncKey(fn)
	if i := strings.LastIndex(key, "/"); i >= 0 {
		key = key[i+1:]
	}
	return key
}

// closureParkVars finds local variables bound exactly once to a function
// literal and reports which of those literals can park. Nested closure
// calls resolve through the same map by fixpoint.
func closureParkVars(info *types.Info, fd *ast.FuncDecl, parks func(*types.Func) bool) map[*types.Var]bool {
	lits := map[*types.Var]*ast.FuncLit{}
	bound := map[*types.Var]int{}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		v, ok := info.Defs[id].(*types.Var)
		if !ok {
			if v, ok = info.Uses[id].(*types.Var); !ok {
				return
			}
		}
		bound[v]++
		if lit, ok := rhs.(*ast.FuncLit); ok {
			lits[v] = lit
		} else {
			delete(lits, v)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					bind(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	res := map[*types.Var]bool{}
	for changed := true; changed; {
		changed = false
		for v, lit := range lits {
			if res[v] || bound[v] != 1 {
				continue
			}
			if litParks(info, lit, parks, res) {
				res[v] = true
				changed = true
			}
		}
	}
	return res
}

// litParks reports whether a function literal's body contains a parking
// call (directly or through an already-classified closure variable).
func litParks(info *types.Info, lit *ast.FuncLit, parks func(*types.Func) bool, closureParks map[*types.Var]bool) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := callgraph.ResolveCallee(info, call); fn != nil {
			if parks(fn) {
				found = true
			}
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && closureParks[v] {
				found = true
			}
		}
		return true
	})
	return found
}

// reachable returns the blocks reachable from Entry in stable index order.
func reachable(g *cfg.Graph) []*cfg.Block {
	seen := map[*cfg.Block]bool{}
	var walk func(*cfg.Block)
	var order []*cfg.Block
	walk = func(blk *cfg.Block) {
		if seen[blk] {
			return
		}
		seen[blk] = true
		order = append(order, blk)
		for _, s := range blk.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	sort.Slice(order, func(i, j int) bool { return order[i].Index < order[j].Index })
	return order
}

// sameSet reports set equality (nil counts as empty).
func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// copySet clones a held set.
func copySet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}
