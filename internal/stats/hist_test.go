package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistBucketEdges(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1 << 62, 63},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := HistBucket(c.v); got != c.want {
			t.Errorf("HistBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Each bucket's upper edge must map back into that bucket, and the
	// next value into the next one (pow2 boundary consistency).
	for i := 1; i < 63; i++ {
		hi := HistBucketHigh(i)
		if got := HistBucket(hi); got != i {
			t.Errorf("HistBucket(HistBucketHigh(%d)=%d) = %d", i, hi, got)
		}
		if got := HistBucket(hi + 1); got != i+1 {
			t.Errorf("HistBucket(%d) = %d, want %d", hi+1, got, i+1)
		}
	}
	if HistBucketHigh(0) != 0 {
		t.Errorf("HistBucketHigh(0) = %d, want 0", HistBucketHigh(0))
	}
	if HistBucketHigh(63) != math.MaxInt64 {
		t.Errorf("HistBucketHigh(63) = %d, want MaxInt64", HistBucketHigh(63))
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	// 100 samples 1..100: buckets are coarse, so quantiles are bucket
	// upper edges: p50 -> sample 50 lives in bucket 6 (32..63) -> 63.
	for v := int64(1); v <= 100; v++ {
		h.Add(v)
	}
	if h.N != 100 || h.Sum != 5050 || h.Min != 1 || h.Max != 100 {
		t.Fatalf("counts: N=%d Sum=%d Min=%d Max=%d", h.N, h.Sum, h.Min, h.Max)
	}
	if got := h.Quantile(0.5); got != 63 {
		t.Errorf("p50 = %d, want 63 (upper edge of [32,64))", got)
	}
	// p99 and p100 land in the top occupied bucket [64,128); the edge 127
	// exceeds the observed max, so both clamp to 100.
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("p99 = %d, want 100 (clamped to max)", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("p100 = %d, want 100", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %d, want 1 (first sample's bucket edge is 1)", got)
	}
	if got := h.Mean(); got != 50.5 {
		t.Errorf("mean = %v, want 50.5", got)
	}
}

func TestHistogramMaxOverflow(t *testing.T) {
	var h Histogram
	h.Add(math.MaxInt64)
	h.Add(math.MaxInt64)
	if h.Counts[63] != 2 {
		t.Fatalf("top bucket count = %d, want 2", h.Counts[63])
	}
	if got := h.Quantile(0.5); got != math.MaxInt64 {
		t.Errorf("p50 = %d, want MaxInt64", got)
	}
	// Sum wraps with two MaxInt64 samples; the histogram still answers
	// quantiles from counts, which is what reports use.
	if got := h.Quantile(1); got != math.MaxInt64 {
		t.Errorf("p100 = %d, want MaxInt64", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for v := int64(1); v <= 50; v++ {
		a.Add(v)
	}
	for v := int64(51); v <= 100; v++ {
		b.Add(v)
	}
	a.Merge(&b)
	var want Histogram
	for v := int64(1); v <= 100; v++ {
		want.Add(v)
	}
	if a != want {
		t.Errorf("merged histogram differs from direct accumulation")
	}
}

func TestChartFprintEmpty(t *testing.T) {
	var sb strings.Builder
	(&Chart{Title: "empty"}).Fprint(&sb)
	if sb.Len() != 0 {
		t.Errorf("empty chart rendered %q, want nothing", sb.String())
	}
	sb.Reset()
	// X axis but no series — still nothing to plot.
	(&Chart{Title: "no series", X: []string{"a", "b"}}).Fprint(&sb)
	if sb.Len() != 0 {
		t.Errorf("series-less chart rendered %q, want nothing", sb.String())
	}
}

func TestChartFprintSinglePoint(t *testing.T) {
	c := &Chart{
		Title:  "one point",
		YLabel: "MB/s",
		X:      []string{"4KB"},
		Series: []Series{{Name: "dafs", Y: []float64{42}}},
	}
	out := c.String()
	if !strings.Contains(out, "one point") {
		t.Errorf("missing title in %q", out)
	}
	// The single sample is the maximum: it must plot on the top row with
	// the first series mark.
	lines := strings.Split(out, "\n")
	if len(lines) < 3 || !strings.Contains(lines[1], "o") {
		t.Errorf("single point not plotted on top row:\n%s", out)
	}
	if !strings.Contains(lines[1], "42") {
		t.Errorf("y-axis max label missing:\n%s", out)
	}
	if !strings.Contains(out, "o=dafs") || !strings.Contains(out, "MB/s") {
		t.Errorf("legend missing:\n%s", out)
	}
	// A series longer than the x axis must not panic or plot past it.
	c.Series[0].Y = []float64{42, 7}
	if !strings.Contains(c.String(), "one point") {
		t.Error("over-long series render failed")
	}
}

func TestChartFromTableTooShort(t *testing.T) {
	tbl := &Table{ID: "X", Columns: []string{"n", "v"}}
	tbl.AddRow("1", "2.0")
	if ChartFromTable(tbl) != nil {
		t.Error("single-row table should not chart")
	}
}
