// Package sim provides a deterministic discrete-event simulation kernel.
//
// Simulated processes are ordinary goroutines, but the kernel guarantees
// that at most one of them runs at any instant: a process executes until it
// blocks on a simulated primitive (Wait, channel receive, resource acquire),
// at which point control returns to the kernel, which advances virtual time
// to the next scheduled event. All wakeups that become ready at the same
// virtual instant are delivered in FIFO order of their scheduling, so a
// simulation produces identical results on every run regardless of the Go
// scheduler or GOMAXPROCS.
//
// The kernel is the substrate for every simulated component in this
// repository: hosts, CPUs, VIA NICs, the SAN fabric, DAFS and NFS servers,
// and MPI ranks.
package sim

import "fmt"

// Time is a point in (or a span of) virtual time, in nanoseconds.
type Time int64

// Convenient durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Micros converts a floating-point number of microseconds to a Time.
func Micros(us float64) Time { return Time(us * float64(Microsecond)) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with a unit chosen by magnitude.
func (t Time) String() string {
	switch abs := max(t, -t); {
	case abs < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case abs < Millisecond:
		return fmt.Sprintf("%.2fus", float64(t)/float64(Microsecond))
	case abs < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4fs", float64(t)/float64(Second))
	}
}

// TransferTime returns the virtual time needed to move n bytes at the given
// rate in bytes per second. Rates must be positive; n may be zero.
func TransferTime(n int64, bytesPerSec float64) Time {
	if n <= 0 {
		return 0
	}
	if bytesPerSec <= 0 {
		panic("sim: TransferTime with non-positive rate")
	}
	t := Time(float64(n) / bytesPerSec * float64(Second))
	if t < 1 {
		t = 1 // at least one tick so serialization is never free
	}
	return t
}
