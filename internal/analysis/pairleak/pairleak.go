// Package pairleak implements the mpiolint pass that flags acquire calls
// with no matching release on some path to function exit.
//
// Three pairings matter to the reproduction's resource model:
//
//   - sim.Resource units: r.Acquire(p, n) without r.Release(n) starves
//     every proc queued behind the resource for the rest of the run.
//   - Registered staging buffers: StripedDAFSDriver.getStage without
//     putStage / putStageAll leaks a pinned, NIC-registered window —
//     the pool never sees it again and the registration is lost.
//   - VIA registrations: NIC.Register without NIC.Deregister pins
//     simulated memory forever (the registration *cache* owns its own
//     regions; only raw Register results are tracked).
//
// The pass runs a may-be-open dataflow over the control-flow graph
// (internal/analysis/cfg): an acquire opens a token, a matching release
// closes it, and any token still open at a return (or fall-off-the-end)
// edge is reported at its acquire site. Panic edges are not leak exits —
// a panicking proc abandons the whole run. A *deferred* release closes
// its token (the deferred call runs at every exit), the opposite of
// blockhold's window rule, and correctly so: pairleak cares that the
// release happens at all, blockhold cares what runs before it.
//
// Ownership transfer is modeled by escape, which silently closes a value
// token: storing the value in a struct or slice that outlives the call
// (composite literal, field write), returning it, or passing it to any
// call hands responsibility to the new owner — the release functions
// (putStage, putStageAll, NIC.Deregister) are just the canonical
// consumers, and a non-release callee's obligation is checked where it
// lives. A value captured by a function literal is untracked for the
// same reason. Resource-unit tokens have no escape: units are released
// by expression text (c.credits), and a transfer to a peer proc is
// exactly the case for a documented `//mpiolint:ignore pairleak <why>`.
package pairleak

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"dafsio/internal/analysis"
	"dafsio/internal/analysis/callgraph"
	"dafsio/internal/analysis/cfg"
)

// Analyzer is the pairleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "pairleak",
	Doc:  "flag CFG paths where an acquire (Resource.Acquire, getStage, NIC.Register) has no matching release before exit",
	Run:  run,
}

const (
	resAcquireKey = callgraph.SimPkgPath + ".Resource.Acquire"
	resReleaseKey = callgraph.SimPkgPath + ".Resource.Release"
)

// acquireKeys maps value-producing acquire callees to a short display name
// for diagnostics. Their releases (putStage / putStageAll / NIC.Deregister)
// need no special-casing: passing a tracked value to ANY call hands
// ownership to the callee and closes the pair here — the release functions
// are simply the canonical consumers.
var acquireKeys = map[string]string{
	"dafsio/internal/mpiio.StripedDAFSDriver.getStage": "staging buffer from getStage",
	"dafsio/internal/via.NIC.Register":                 "registered region from NIC.Register",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// tokenInfo describes one tracked acquisition.
type tokenInfo struct {
	display string    // what leaked, for the report
	pos     token.Pos // first acquire site
}

// event is one open/close action inside a basic block, in source order.
type event struct {
	kind  int // evOpen, evClose
	token string
	pos   token.Pos
	agg   bool // element of a tracked slice: exempt from re-acquire checks
}

const (
	evOpen = iota
	evClose
)

// funcScan carries per-function analysis state.
type funcScan struct {
	pass    *analysis.Pass
	info    *types.Info
	tracked map[*types.Var]bool       // local vars holding acquire results
	alias   map[*types.Var]*types.Var // range var -> ranged tracked slice
	tokens  map[string]*tokenInfo
}

// checkFunc runs the may-be-open dataflow over one function.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	fs := &funcScan{
		pass:    pass,
		info:    pass.TypesInfo,
		tracked: map[*types.Var]bool{},
		alias:   map[*types.Var]*types.Var{},
		tokens:  map[string]*tokenInfo{},
	}
	fs.prepass(fd)

	g := cfg.New(fd.Body)
	events := make([][]event, len(g.Blocks))
	any := false
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			fs.scanStmt(n, &events[blk.Index])
		}
		if len(events[blk.Index]) > 0 {
			any = true
		}
	}
	if !any {
		return
	}

	order := reachable(g)
	preds := map[*cfg.Block][]*cfg.Block{}
	for _, blk := range order {
		for _, s := range blk.Succs {
			preds[s] = append(preds[s], blk)
		}
	}
	in := make([]map[string]bool, len(g.Blocks))
	out := make([]map[string]bool, len(g.Blocks))
	for changed := true; changed; {
		changed = false
		for _, blk := range order {
			ni := map[string]bool{}
			for _, p := range preds[blk] {
				for tok := range out[p.Index] {
					ni[tok] = true
				}
			}
			no := step(copySet(ni), events[blk.Index])
			if !sameSet(in[blk.Index], ni) || !sameSet(out[blk.Index], no) {
				in[blk.Index], out[blk.Index] = ni, no
				changed = true
			}
		}
	}

	// Tokens still open where control reaches Exit leak — unless the only
	// way out of the block is a panic, which abandons the run.
	leaked := map[string]bool{}
	for _, blk := range order {
		if blk == g.Exit || endsInPanic(blk) {
			continue
		}
		exits := false
		for _, s := range blk.Succs {
			if s == g.Exit {
				exits = true
			}
		}
		if !exits {
			continue
		}
		for tok := range out[blk.Index] {
			leaked[tok] = true
		}
	}
	// Re-acquire while open: the previous acquisition can never be
	// released through this variable again.
	reopened := map[string]token.Pos{}
	for _, blk := range order {
		held := copySet(in[blk.Index])
		for _, ev := range events[blk.Index] {
			switch ev.kind {
			case evOpen:
				if held[ev.token] && !ev.agg {
					if _, dup := reopened[ev.token]; !dup {
						reopened[ev.token] = ev.pos
					}
				}
				held[ev.token] = true
			case evClose:
				delete(held, ev.token)
			}
		}
	}

	var toks []string
	for tok := range leaked {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	for _, tok := range toks {
		ti := fs.tokens[tok]
		pass.Reportf(ti.pos,
			"%s is not released on every path to return: release it on each path, defer the release, or document the handoff with //mpiolint:ignore pairleak",
			ti.display)
	}
	var rtoks []string
	for tok := range reopened {
		rtoks = append(rtoks, tok)
	}
	sort.Strings(rtoks)
	for _, tok := range rtoks {
		pass.Reportf(reopened[tok],
			"%s is reacquired while a previous acquisition may still be unreleased (loop or branch re-acquire)",
			fs.tokens[tok].display)
	}
}

// step folds a block's events over an open set.
func step(open map[string]bool, evs []event) map[string]bool {
	for _, ev := range evs {
		switch ev.kind {
		case evOpen:
			open[ev.token] = true
		case evClose:
			delete(open, ev.token)
		}
	}
	return open
}

// prepass finds the local variables that ever hold an acquire result,
// disqualifies those captured by function literals (ownership moved into
// the closure), and resolves range aliases (for _, sb := range sbs).
func (fs *funcScan) prepass(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || fs.acquireName(call) == "" {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.Ident:
					if v := fs.localVar(lhs); v != nil {
						fs.tracked[v] = true
					}
				case *ast.IndexExpr:
					if id, ok := lhs.X.(*ast.Ident); ok {
						if v := fs.localVar(id); v != nil {
							fs.tracked[v] = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			id, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			slice := fs.localVar(id)
			if slice == nil {
				return true
			}
			if val, ok := n.Value.(*ast.Ident); ok {
				if v := fs.localVar(val); v != nil {
					fs.alias[v] = slice
				}
			}
		}
		return true
	})
	// A var used inside a function literal is owned by the closure from
	// the pass's point of view: untrack it entirely.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v := fs.localVar(id); v != nil {
					delete(fs.tracked, v)
				}
			}
			return true
		})
		return false
	})
}

// localVar resolves an identifier to the *types.Var it names (definition
// or use), or nil.
func (fs *funcScan) localVar(id *ast.Ident) *types.Var {
	if v, ok := fs.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := fs.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// acquireName classifies a call as a value-producing acquire, returning
// the display name ("" if not an acquire).
func (fs *funcScan) acquireName(call *ast.CallExpr) string {
	fn := callgraph.ResolveCallee(fs.info, call)
	if fn == nil {
		return ""
	}
	return acquireKeys[callgraph.FuncKey(fn)]
}

// valueToken renders the dataflow token of a tracked variable; resource
// tokens use a "res:" prefix over the receiver's expression text.
func valueToken(v *types.Var) string {
	return fmt.Sprintf("val:%s@%d", v.Name(), v.Pos())
}

// tokenOf resolves an expression to the tracked variable it denotes: the
// variable itself, an element of a tracked slice, or a range alias.
func (fs *funcScan) tokenOf(e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v := fs.localVar(e)
		if v == nil {
			return nil
		}
		if fs.tracked[v] {
			return v
		}
		if s, ok := fs.alias[v]; ok && fs.tracked[s] {
			return s
		}
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if v := fs.localVar(id); v != nil && fs.tracked[v] {
				return v
			}
		}
	}
	return nil
}

// open records an acquire of a tracked variable.
func (fs *funcScan) open(v *types.Var, display string, pos token.Pos, evs *[]event) {
	tok := valueToken(v)
	if fs.tokens[tok] == nil {
		fs.tokens[tok] = &tokenInfo{display: display, pos: pos}
	}
	*evs = append(*evs, event{kind: evOpen, token: tok, pos: pos})
}

// openAgg records an acquire into an element of a tracked slice; distinct
// elements are one aggregate token, so re-acquire checks don't apply.
func (fs *funcScan) openAgg(v *types.Var, display string, pos token.Pos, evs *[]event) {
	tok := valueToken(v)
	if fs.tokens[tok] == nil {
		fs.tokens[tok] = &tokenInfo{display: display, pos: pos}
	}
	*evs = append(*evs, event{kind: evOpen, token: tok, pos: pos, agg: true})
}

// close records a release or escape of a tracked variable.
func (fs *funcScan) close(v *types.Var, pos token.Pos, evs *[]event) {
	*evs = append(*evs, event{kind: evClose, token: valueToken(v), pos: pos})
}

// scanStmt emits the events of one block node in source order.
func (fs *funcScan) scanStmt(n ast.Node, evs *[]event) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i, rhs := range n.Rhs {
				fs.scanAssignPair(n.Lhs[i], rhs, evs)
			}
			return
		}
		for _, rhs := range n.Rhs {
			fs.walk(rhs, evs)
		}
		for _, lhs := range n.Lhs {
			fs.walkAssignTarget(lhs, evs)
		}
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if v := fs.tokenOf(res); v != nil {
				// Returned: ownership moves to the caller.
				fs.close(v, res.Pos(), evs)
				continue
			}
			fs.walk(res, evs)
		}
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if name := fs.acquireName(call); name != "" {
				// Result discarded: leaked the instant it is acquired.
				fs.pass.Reportf(call.Pos(), "result of acquire dropped: %s is never released", name)
				return
			}
		}
		fs.walk(n.X, evs)
	case *ast.DeferStmt:
		// A deferred release runs at every exit: it closes the pair.
		fs.walk(n.Call, evs)
	case *ast.GoStmt:
		fs.walk(n.Call, evs)
	default:
		// Remaining statements (sends, incdec, decls...) and controlling
		// expressions (if conditions, range operands, switch tags...):
		// scan for calls and tracked-value uses.
		fs.walk(n, evs)
	}
}

// scanAssignPair handles one lhs = rhs pair.
func (fs *funcScan) scanAssignPair(lhs, rhs ast.Expr, evs *[]event) {
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		if name := fs.acquireName(call); name != "" {
			fs.walkCallParts(call, evs)
			switch l := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				if v := fs.localVar(l); v != nil && fs.tracked[v] {
					fs.open(v, name, call.Pos(), evs)
					return
				}
			case *ast.IndexExpr:
				if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
					if v := fs.localVar(id); v != nil && fs.tracked[v] {
						fs.walk(l.Index, evs)
						fs.openAgg(v, name, call.Pos(), evs)
						return
					}
				}
				fs.walk(l, evs)
			default:
				// Acquire stored straight into a field/map/global: the
				// containing object owns it.
				fs.walkAssignTarget(l, evs)
			}
			return
		}
	}
	fs.walk(rhs, evs)
	// Overwriting a tracked variable without an acquire closes it
	// (conservatively silent: the old value may have been moved).
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if v := fs.localVar(id); v != nil && fs.tracked[v] {
			fs.close(v, lhs.Pos(), evs)
			return
		}
	}
	fs.walkAssignTarget(lhs, evs)
}

// walkAssignTarget scans an assignment target's subexpressions (indexes,
// receivers) without treating the target itself as a value use. Writing a
// tracked value INTO an element or field is an escape handled by walk on
// the RHS side.
func (fs *funcScan) walkAssignTarget(lhs ast.Expr, evs *[]event) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		// plain store target: no value use
	case *ast.IndexExpr:
		fs.walk(l.Index, evs)
		if fs.tokenOf(l.X) == nil {
			fs.walk(l.X, evs)
		}
	case *ast.SelectorExpr:
		fs.walk(l.X, evs)
	case *ast.StarExpr:
		fs.walk(l.X, evs)
	default:
		fs.walk(l, evs)
	}
}

// walk scans an expression tree for call events and tracked-value uses.
// Any use of a tracked value outside a recognized release call is an
// escape: ownership moves, the token closes silently.
func (fs *funcScan) walk(n ast.Node, evs *[]event) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // captured vars were untracked in the prepass
		case *ast.CallExpr:
			fs.scanCall(x, evs)
			return false
		case *ast.SelectorExpr:
			if fs.tokenOf(x.X) != nil {
				return false // field read of a tracked value: harmless
			}
			return true
		case *ast.Ident:
			if v := fs.tokenOf(x); v != nil {
				fs.close(v, x.Pos(), evs) // escape
			}
		}
		return true
	})
}

// walkCallParts scans a call's receiver chain and arguments (used when the
// call itself was already classified by the caller).
func (fs *funcScan) walkCallParts(call *ast.CallExpr, evs *[]event) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		fs.walk(sel.X, evs)
	}
	for _, arg := range call.Args {
		fs.walk(arg, evs)
	}
}

// scanCall classifies one call: resource acquire/release by receiver text,
// value release/escape by argument, and recurses everywhere else.
func (fs *funcScan) scanCall(call *ast.CallExpr, evs *[]event) {
	fn := callgraph.ResolveCallee(fs.info, call)
	key := ""
	if fn != nil {
		key = callgraph.FuncKey(fn)
	}
	switch key {
	case resAcquireKey, resReleaseKey:
		recv := ""
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			recv = types.ExprString(sel.X)
			fs.walk(sel.X, evs)
		}
		tok := "res:" + recv
		if key == resAcquireKey {
			if fs.pass.IgnoredAt(call.Pos()) {
				// A documented ownership transfer at the acquire site: the
				// units are a peer proc's obligation, nothing opens here.
				for _, arg := range call.Args {
					fs.walk(arg, evs)
				}
				return
			}
			if fs.tokens[tok] == nil {
				fs.tokens[tok] = &tokenInfo{
					display: fmt.Sprintf("resource units acquired on %s", recv),
					pos:     call.Pos(),
				}
			}
			*evs = append(*evs, event{kind: evOpen, token: tok, pos: call.Pos()})
		} else {
			*evs = append(*evs, event{kind: evClose, token: tok, pos: call.Pos()})
		}
		for _, arg := range call.Args {
			fs.walk(arg, evs)
		}
		return
	}
	if name := fs.acquireName(call); name != "" {
		// An acquire reached through walk: its result is consumed by an
		// enclosing expression (composite literal, call argument, return)
		// — ownership moves with the value, nothing to track here.
		fs.walkCallParts(call, evs)
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		fs.walk(sel.X, evs)
	}
	for _, arg := range call.Args {
		if v := fs.tokenOf(arg); v != nil {
			// Released by a recognized consumer (releaseKeys), or escaped
			// into any other callee: either way the pair is no longer this
			// function's responsibility.
			fs.close(v, arg.Pos(), evs)
			continue
		}
		fs.walk(arg, evs)
	}
}

// endsInPanic reports whether a block's last node is a panic call (its
// Exit edge is a run-abandoning panic edge, not a return).
func endsInPanic(blk *cfg.Block) bool {
	if len(blk.Nodes) == 0 {
		return false
	}
	es, ok := blk.Nodes[len(blk.Nodes)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// reachable returns the blocks reachable from Entry in stable index order.
func reachable(g *cfg.Graph) []*cfg.Block {
	seen := map[*cfg.Block]bool{}
	var order []*cfg.Block
	var walk func(*cfg.Block)
	walk = func(blk *cfg.Block) {
		if seen[blk] {
			return
		}
		seen[blk] = true
		order = append(order, blk)
		for _, s := range blk.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	sort.Slice(order, func(i, j int) bool { return order[i].Index < order[j].Index })
	return order
}

// sameSet reports set equality (nil counts as empty).
func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// copySet clones an open set.
func copySet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}
