package sim

// Resource is a counted resource with strict FIFO admission, used to model
// CPUs, DMA engines, disk arms, and link arbitration. It also integrates
// occupancy and queue depth over time so experiments can report utilization
// (e.g. client CPU busy fraction, the paper's key DAFS-vs-NFS metric) and
// queueing delay.
//
// Waiters queue on the intrusive list through each Proc's wnext link; the
// requested unit count, enqueue time, and grant flag live in the Proc's
// reusable wait fields, so a contended Acquire does not allocate.
type Resource struct {
	Name string

	k     *Kernel
	cap   int
	inUse int
	waitH *Proc // FIFO admission queue
	waitT *Proc
	nwait int

	busyInt    float64 // integral of inUse over time, unit-ns
	qInt       float64 // integral of queue depth over time, waiter-ns
	lastChange Time
	createdAt  Time

	acquires int64 // Acquire calls
	waits    int64 // acquisitions that had to queue
	waited   Time  // cumulative queue time of granted acquisitions
}

// NewResource creates a resource with the given capacity (>= 1).
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{Name: name, k: k, cap: capacity, lastChange: k.now, createdAt: k.now}
}

// Cap returns the resource capacity.
func (r *Resource) Cap() int { return r.cap }

// InUse returns the currently held units.
func (r *Resource) InUse() int { return r.inUse }

func (r *Resource) account() {
	now := r.k.now
	dt := float64(now - r.lastChange)
	r.busyInt += float64(r.inUse) * dt
	r.qInt += float64(r.nwait) * dt
	r.lastChange = now
}

// Acquire blocks p until n units are available. Admission is strictly FIFO:
// a large request at the head of the queue blocks smaller requests behind
// it, which keeps service order deterministic and fair.
func (r *Resource) Acquire(p *Proc, n int) {
	if n < 1 || n > r.cap {
		panic("sim: bad acquire count")
	}
	r.acquires++
	if r.waitH == nil && r.inUse+n <= r.cap {
		r.account()
		r.inUse += n
		return
	}
	r.account()
	p.wn = n
	p.wsince = r.k.now
	p.wgranted = false
	pushWaiter(&r.waitH, &r.waitT, p)
	r.nwait++
	for !p.wgranted {
		p.park()
	}
}

// Release returns n units and grants as many FIFO waiters as now fit.
func (r *Resource) Release(n int) {
	if n < 1 || n > r.inUse {
		panic("sim: bad release count")
	}
	r.account()
	r.inUse -= n
	for r.waitH != nil && r.inUse+r.waitH.wn <= r.cap {
		w := popWaiter(&r.waitH, &r.waitT)
		r.nwait--
		w.wgranted = true
		r.inUse += w.wn
		r.waits++
		// Clamp to createdAt so a ResetStats issued while processes were
		// queued charges only the post-reset share of their wait.
		since := max(w.wsince, r.createdAt)
		r.waited += r.k.now - since
		r.k.wake(w)
	}
}

// Use acquires n units, holds them for d of virtual time, and releases them.
// It is the standard way to charge work to a CPU or engine.
func (r *Resource) Use(p *Proc, n int, d Time) {
	r.Acquire(p, n)
	p.Wait(d)
	r.Release(n)
}

// BusyTime returns the cumulative busy time normalized by capacity: a
// single-unit resource held for 5ms reports 5ms; a 2-unit resource with one
// unit held for 5ms reports 2.5ms.
func (r *Resource) BusyTime() Time {
	integral := r.busyInt + float64(r.inUse)*float64(r.k.now-r.lastChange)
	return Time(integral / float64(r.cap))
}

// Utilization returns the busy fraction since creation (0..1). It returns 0
// before any virtual time has elapsed.
func (r *Resource) Utilization() float64 {
	elapsed := r.k.now - r.createdAt
	if elapsed <= 0 {
		return 0
	}
	return float64(r.BusyTime()) / float64(elapsed)
}

// Acquires returns the number of Acquire calls since creation or the last
// ResetStats.
func (r *Resource) Acquires() int64 { return r.acquires }

// Waits returns how many acquisitions had to queue before being granted.
func (r *Resource) Waits() int64 { return r.waits }

// QueueWait returns the cumulative virtual time acquirers have spent queued,
// including the elapsed share of processes still waiting now (mirroring how
// BusyTime counts current holders).
func (r *Resource) QueueWait() Time {
	total := r.waited
	for w := r.waitH; w != nil; w = w.wnext {
		total += r.k.now - max(w.wsince, r.createdAt)
	}
	return total
}

// AvgQueueDepth returns the time-averaged number of queued waiters since
// creation or the last ResetStats.
func (r *Resource) AvgQueueDepth() float64 {
	elapsed := r.k.now - r.createdAt
	if elapsed <= 0 {
		return 0
	}
	integral := r.qInt + float64(r.nwait)*float64(r.k.now-r.lastChange)
	return integral / float64(elapsed)
}

// ResetStats restarts utilization AND queueing accounting at the current
// instant without touching current holders or waiters (used to exclude
// warmup from measurements). Processes already queued at the reset charge
// only their post-reset wait.
func (r *Resource) ResetStats() {
	r.busyInt = 0
	r.qInt = 0
	r.acquires = 0
	r.waits = 0
	r.waited = 0
	r.lastChange = r.k.now
	r.createdAt = r.k.now
}
