# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# four gates.

GO ?= go

.PHONY: build test race lint fmt all

all: build test race lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the stock vet suite plus mpiolint, the repo's own invariant
# checkers (simtime, detrand, regmem, errwrap — see DESIGN.md).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/mpiolint ./...

fmt:
	gofmt -s -w .
