// Package stats formats experiment results: fixed-width tables matching the
// rows and series a paper's evaluation section reports, plus unit helpers.
package stats

import (
	"fmt"
	"io"
	"strings"

	"dafsio/internal/sim"
)

// Table is one experiment's result: a titled grid whose first column is the
// independent variable.
type Table struct {
	ID      string
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row; it must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("stats: row has %d cells, table %q has %d columns", len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(&sb, "  %-*s", widths[i], c)
			} else {
				fmt.Fprintf(&sb, "  %*s", widths[i], c)
			}
		}
		fmt.Fprintln(w, sb.String())
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// MBps computes bandwidth in MB/s (10^6 bytes) from bytes over virtual time.
func MBps(bytes int64, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e6
}

// BW formats a bandwidth value.
func BW(mbps float64) string { return fmt.Sprintf("%.1f", mbps) }

// Us formats a duration in microseconds.
func Us(d sim.Time) string { return fmt.Sprintf("%.1f", d.Micros()) }

// Pct formats a 0..1 fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// Ratio formats a speedup factor.
func Ratio(f float64) string { return fmt.Sprintf("%.2fx", f) }

// Size formats a byte count compactly (512B, 4KB, 1MB).
func Size(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
