package via

import (
	"testing"

	"dafsio/internal/model"
	"dafsio/internal/sim"
)

func TestVIErrorStateBlocksPostSend(t *testing.T) {
	p2 := newPair(model.CLAN1998())
	p2.k.Spawn("send", func(p *sim.Proc) {
		r := p2.nicA.Register(p, make([]byte, 8))
		// First send hits an empty receive queue -> VI error at peer, and
		// the sender's completion reports the underrun.
		p2.viA.PostSend(p, &Descriptor{Op: OpSend, Region: r, Len: 8})
		if c := p2.viA.SendCQ.Wait(p); c.Err != ErrRecvUnderrun {
			t.Errorf("first send err: %v", c.Err)
		}
		// Posting a receive on the broken peer VI fails all queued recvs;
		// a subsequent send into the erred VI again reports an error.
		p2.viA.PostSend(p, &Descriptor{Op: OpSend, Region: r, Len: 8})
		if c := p2.viA.SendCQ.Wait(p); c.Err == nil {
			t.Error("send into erred VI succeeded")
		}
	})
	if err := p2.k.Run(); err != nil {
		t.Fatal(err)
	}
	if p2.viB.Err() == nil {
		t.Fatal("peer VI not in error state")
	}
}

func TestErrorVIFailsPostedRecvs(t *testing.T) {
	p2 := newPair(model.CLAN1998())
	p2.k.Spawn("recv", func(p *sim.Proc) {
		r := p2.nicB.Register(p, make([]byte, 64))
		// One recv posted; two messages arrive; the second underruns,
		// failing the VI.
		p2.viB.PostRecv(p, &Descriptor{Region: r, Len: 64})
		c1 := p2.viB.RecvCQ.Wait(p)
		if c1.Err != nil {
			t.Errorf("first recv: %v", c1.Err)
		}
		// After the error, newly posted receives complete with errors
		// when the VI is already failed... post and observe state.
		if p2.viB.Err() == nil {
			// The error may arrive after this check; wait for the
			// second message's effect by idling.
			p.Wait(sim.Millisecond)
		}
		if p2.viB.Err() == nil {
			t.Error("VI not failed after underrun")
		}
	})
	p2.k.Spawn("send", func(p *sim.Proc) {
		r := p2.nicA.Register(p, make([]byte, 64))
		p2.viA.PostSend(p, &Descriptor{Op: OpSend, Region: r, Len: 64})
		p2.viA.SendCQ.Wait(p)
		p2.viA.PostSend(p, &Descriptor{Op: OpSend, Region: r, Len: 64})
		p2.viA.SendCQ.Wait(p)
	})
	if err := p2.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCQPoll(t *testing.T) {
	p2 := newPair(model.CLAN1998())
	p2.k.Spawn("app", func(p *sim.Proc) {
		if _, ok := p2.viA.SendCQ.Poll(); ok {
			t.Error("poll on empty CQ returned a completion")
		}
		r := p2.nicA.Register(p, make([]byte, 8))
		rb := p2.nicB.Register(p, make([]byte, 8))
		p2.viB.PostRecv(p, &Descriptor{Region: rb, Len: 8})
		p2.viA.PostSend(p, &Descriptor{Op: OpSend, Region: r, Len: 8})
		p.Wait(sim.Millisecond) // let it complete
		if c, ok := p2.viA.SendCQ.Poll(); !ok || c.Err != nil {
			t.Errorf("poll after completion: ok=%v err=%v", ok, c.Err)
		}
		if p2.viA.SendCQ.Len() != 0 {
			t.Error("CQ not drained")
		}
	})
	if err := p2.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPrepostRecvValidation(t *testing.T) {
	p2 := newPair(model.CLAN1998())
	p2.k.Spawn("app", func(p *sim.Proc) {
		rB := p2.nicB.Register(p, make([]byte, 8))
		if err := p2.viA.PrepostRecv(&Descriptor{Region: rB, Len: 8}); err != ErrInvalidRegion {
			t.Errorf("foreign region: %v", err)
		}
		rA := p2.nicA.Register(p, make([]byte, 8))
		if err := p2.viA.PrepostRecv(&Descriptor{Region: rA, Offset: 4, Len: 8}); err != ErrBounds {
			t.Errorf("bounds: %v", err)
		}
		if err := p2.viA.PrepostRecv(&Descriptor{Region: rA, Len: 8}); err != nil {
			t.Errorf("valid prepost: %v", err)
		}
	})
	if err := p2.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRDMAStatsCounted(t *testing.T) {
	p2 := newPair(model.CLAN1998())
	ready := sim.NewFuture[MemHandle](p2.k)
	p2.k.Spawn("b", func(p *sim.Proc) {
		r := p2.nicB.Register(p, make([]byte, 4096))
		ready.Set(r.Handle)
	})
	p2.k.Spawn("a", func(p *sim.Proc) {
		h := ready.Get(p)
		r := p2.nicA.Register(p, make([]byte, 4096))
		p2.viA.PostSend(p, &Descriptor{Op: OpRDMAWrite, Region: r, Len: 4096, RemoteHandle: h})
		p2.viA.SendCQ.Wait(p)
		p2.viA.PostSend(p, &Descriptor{Op: OpRDMARead, Region: r, Len: 4096, RemoteHandle: h})
		p2.viA.SendCQ.Wait(p)
	})
	if err := p2.k.Run(); err != nil {
		t.Fatal(err)
	}
	st := p2.nicA.Stats()
	if st.RDMAWrites != 1 || st.RDMAReads != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDeregisterInvalidatesInFlightUse(t *testing.T) {
	// Posting with a just-deregistered region is rejected at the doorbell.
	p2 := newPair(model.CLAN1998())
	p2.k.Spawn("a", func(p *sim.Proc) {
		r := p2.nicA.Register(p, make([]byte, 64))
		p2.nicA.Deregister(p, r)
		if r.Valid() {
			t.Error("region still valid")
		}
		if err := p2.viA.PostSend(p, &Descriptor{Op: OpSend, Region: r, Len: 8}); err != ErrInvalidRegion {
			t.Errorf("post with dead region: %v", err)
		}
		// Deregistering twice is harmless.
		p2.nicA.Deregister(p, r)
	})
	if err := p2.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLoopbackVIRejected(t *testing.T) {
	p2 := newPair(model.CLAN1998())
	cq := p2.nicA.NewCQ("x")
	v1 := p2.nicA.NewVI(cq, cq)
	v2 := p2.nicA.NewVI(cq, cq)
	defer func() {
		if recover() == nil {
			t.Fatal("loopback connect did not panic")
		}
	}()
	Connect(v1, v2)
}

func TestForeignCQRejected(t *testing.T) {
	p2 := newPair(model.CLAN1998())
	cqB := p2.nicB.NewCQ("b")
	defer func() {
		if recover() == nil {
			t.Fatal("foreign CQ did not panic")
		}
	}()
	p2.nicA.NewVI(cqB, cqB)
}

func TestDoubleConnectPanics(t *testing.T) {
	p2 := newPair(model.CLAN1998())
	cqA := p2.nicA.NewCQ("a2")
	cqB := p2.nicB.NewCQ("b2")
	v1 := p2.nicA.NewVI(cqA, cqA)
	v2 := p2.nicB.NewVI(cqB, cqB)
	Connect(v1, v2)
	v3 := p2.nicB.NewVI(cqB, cqB)
	defer func() {
		if recover() == nil {
			t.Fatal("double connect did not panic")
		}
	}()
	Connect(v1, v3)
}
