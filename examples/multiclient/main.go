// Multiclient: aggregate-bandwidth scaling — the experiment that separates
// an OS-bypass file protocol from a kernel one.
//
// N clients stream 2 MB each over DAFS and then over NFS on an identical
// SAN. DAFS scales until the server's *link* is full at a few percent
// server CPU; NFS hits the server's *CPU* wall first. The example prints
// the scaling table and both servers' CPU load.
//
// With -servers S (S > 1) each client's file is striped round-robin across
// S DAFS servers in 64KB stripes, and every write fans out as concurrent
// per-server fragments — the aggregate ceiling becomes S server links
// instead of one. The NFS baseline stays single-server.
//
// With -replicas R (R > 1, requires -servers >= R) every stripe is written
// to R servers (write-all) and readable from any of them, and with
// -kill node@time (e.g. -kill server1@10ms) the named node fail-stops at
// the given simulated instant: in-flight calls to it time out, the session
// fails over, and the DAFS runs either complete on the surviving replicas
// (R > 1) or fail with "all replicas down" (R == 1). The NFS baseline is
// never killed.
//
// With -stats I (a simulated-time interval, e.g. -stats 1ms) the 4-client
// DAFS point is re-run with the always-on metrics plane sampling every I
// and the sampled series are printed: per-interval aggregate and
// per-server bandwidth plus the failover counters, the same table
// cmd/mpiostat renders for the benchmark experiments.
//
// Run with: go run ./examples/multiclient [-servers 4] [-replicas 2] [-kill server1@10ms] [-stats 1ms]
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"dafsio/internal/bench"
	"dafsio/internal/cluster"
	"dafsio/internal/dafs"
	"dafsio/internal/fault"
	"dafsio/internal/layout"
	"dafsio/internal/metrics"
	"dafsio/internal/mpiio"
	"dafsio/internal/sim"
	"dafsio/internal/stats"
	"dafsio/internal/trace"
)

const (
	perClient  = 2 << 20
	chunk      = 64 << 10
	stripeSize = 64 << 10

	// Failover tuning for -kill runs: calls to a dead server hang until
	// the deadline, then the session fails over; redials back off
	// 100us -> 800us for three futile attempts before the server is
	// declared gone.
	callTimeout = 20 * sim.Millisecond
)

// killSpec is a parsed -kill flag: fail-stop node at the simulated instant.
type killSpec struct {
	node string
	at   sim.Time
}

// parseKill parses "node@duration", e.g. "server1@10ms".
func parseKill(s string) (*killSpec, error) {
	if s == "" {
		return nil, nil
	}
	node, at, ok := strings.Cut(s, "@")
	if !ok || node == "" {
		return nil, fmt.Errorf("-kill %q: want node@time (e.g. server1@10ms)", s)
	}
	d, err := time.ParseDuration(at)
	if err != nil || d <= 0 {
		return nil, fmt.Errorf("-kill %q: bad time %q (want a positive duration like 10ms)", s, at)
	}
	return &killSpec{node: node, at: sim.Time(d.Nanoseconds())}, nil
}

// point runs n clients against the DAFS servers (or the NFS server) and
// reports aggregate write bandwidth plus server-0 CPU utilization during
// the transfer. A non-nil error means the run failed (e.g. the killed
// server's stripes had no surviving replica).
func point(n, servers, replicas int, kill *killSpec, nfsStack bool) (float64, float64, error) {
	bw, cpu, err, _, _, _ := pointRun(n, servers, replicas, kill, nfsStack, false, 0)
	return bw, cpu, err
}

// pointRun is point with optional cross-layer tracing and metrics
// sampling on an interval of simulated time (both DAFS runs only).
func pointRun(n, servers, replicas int, kill *killSpec, nfsStack, traced bool, mtick sim.Time) (float64, float64, error, *trace.Tracer, sim.Time, *metrics.Registry) {
	cfg := cluster.Config{Clients: n, Servers: servers, DAFS: !nfsStack, NFS: nfsStack}
	if traced {
		cfg.Tracer = trace.New
	}
	if mtick > 0 && !nfsStack {
		cfg.Metrics = metrics.Installer(mtick)
	}
	if kill != nil && !nfsStack {
		cfg.Faults = fault.Installer(fault.Plan{Events: []fault.Event{
			{At: kill.at, Kind: fault.ServerCrash, Node: kill.node},
		}})
	}
	c := cluster.New(cfg)
	st := layout.Striping{StripeSize: stripeSize, Width: servers, Replicas: replicas}
	ready := sim.NewWaitGroup(c.K, n)
	var start, end sim.Time
	var cpu0 sim.Time
	errs := make([]error, n)
	err := c.SpawnClients(func(p *sim.Proc, i int) {
		var f *mpiio.File
		name := fmt.Sprintf("out-%d.dat", i)
		if nfsStack {
			client, err := c.MountNFS(p, i, nil)
			if err != nil {
				log.Fatalf("mount: %v", err)
			}
			f, err = mpiio.Open(p, nil, mpiio.NewNFSDriver(client), name, mpiio.ModeWrOnly|mpiio.ModeCreate, nil)
			if err != nil {
				log.Fatalf("open: %v", err)
			}
		} else {
			var opts *dafs.Options
			if kill != nil {
				opts = &dafs.Options{CallTimeout: callTimeout}
			}
			pool, err := c.DialDAFSAll(p, i, opts)
			if err != nil {
				log.Fatalf("dial: %v", err)
			}
			var drv mpiio.Driver
			if servers == 1 {
				drv = mpiio.NewDAFSDriver(pool[0])
			} else {
				sdrv := mpiio.NewStripedDAFSDriver(pool, st)
				if kill != nil {
					sdrv.Retry = dafs.RetryPolicy{Base: 100 * sim.Microsecond, Max: 800 * sim.Microsecond, Attempts: 3}
				}
				drv = sdrv
			}
			mode := mpiio.ModeWrOnly | mpiio.ModeCreate
			if kill != nil {
				mode = mpiio.ModeRdWr | mpiio.ModeCreate // read-back verification
			}
			f, err = mpiio.Open(p, nil, drv, name, mode, nil)
			if err != nil {
				log.Fatalf("open: %v", err)
			}
		}
		buf := make([]byte, chunk)
		for j := range buf {
			buf[j] = byte(i + j)
		}
		f.WriteAt(p, 0, buf) // warm registration
		ready.Done()
		ready.Wait(p)
		if start == 0 {
			start = p.Now()
			cpu0 = c.ServerNode.CPU.BusyTime()
		}
		for off := int64(0); off < perClient; off += chunk {
			if _, err := f.WriteAt(p, off, buf); err != nil {
				if kill == nil {
					log.Fatalf("write: %v", err)
				}
				errs[i] = fmt.Errorf("client%d write at %d: %w", i, off, err)
				break
			}
		}
		if now := p.Now(); errs[i] == nil && now > end {
			end = now
		}
		if kill != nil && !nfsStack && errs[i] == nil {
			// The dead server's stripe objects are stale, so verify through
			// the driver: read-any must serve every byte from a replica.
			got := make([]byte, chunk)
			for off := int64(0); off < perClient; off += chunk {
				if _, err := f.ReadAt(p, off, got); err != nil {
					errs[i] = fmt.Errorf("client%d read-back at %d: %w", i, off, err)
					break
				}
				if !bytes.Equal(got, buf) {
					errs[i] = fmt.Errorf("client%d read-back at %d: data mismatch", i, off)
					break
				}
			}
		}
		f.Close(p)
	})
	if err != nil {
		log.Fatalf("simulation: %v", err)
	}
	c.Metrics.SampleNow() // close the series at the run's final instant
	for _, e := range errs {
		if e != nil {
			return 0, 0, e, c.Tracer, 0, c.Metrics
		}
	}
	// Verify the data landed: each client's file must hold its pattern,
	// reassembled across the stripe objects when striped. Under -kill the
	// read-back above already verified through the surviving replicas.
	if !nfsStack && kill == nil {
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("out-%d.dat", i)
			sizes := make([]int64, servers)
			for s, store := range c.Stores {
				obj, err := store.Lookup(name)
				if err != nil {
					log.Fatalf("verify: server %d lost %s: %v", s, name, err)
				}
				sizes[s] = obj.Size()
			}
			if got := st.LogicalSize(sizes); got != perClient {
				log.Fatalf("verify: %s is %d bytes, want %d", name, got, perClient)
			}
		}
	}
	elapsed := end - start
	return stats.MBps(int64(n)*perClient, elapsed),
		float64(c.ServerNode.CPU.BusyTime()-cpu0) / float64(elapsed),
		nil, c.Tracer, elapsed, c.Metrics
}

func main() {
	servers := flag.Int("servers", 1, "number of DAFS servers (files striped across them when > 1)")
	replicas := flag.Int("replicas", 1, "copies of each stripe, write-all/read-any (requires -servers >= replicas)")
	killFlag := flag.String("kill", "", "fail-stop a node mid-run, as node@time (e.g. server1@10ms); DAFS runs only")
	traceOut := flag.String("trace", "", "re-run the 4-client DAFS point traced and write a Chrome trace JSON here")
	statsIv := flag.Duration("stats", 0, "re-run the 4-client DAFS point sampling metrics on this simulated-time interval and print the series")
	flag.Parse()
	if *servers < 1 {
		log.Fatalf("-servers %d: need at least one", *servers)
	}
	if *replicas < 1 || *replicas > *servers {
		log.Fatalf("-replicas %d: need 1 <= replicas <= servers (%d)", *replicas, *servers)
	}
	if *replicas > 1 && *servers == 1 {
		log.Fatalf("-replicas %d needs -servers > 1", *replicas)
	}
	kill, err := parseKill(*killFlag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregate write bandwidth, %s per client, %d DAFS server(s), %d replica(s)\n", stats.Size(perClient), *servers, *replicas)
	if kill != nil {
		fmt.Printf("fault plan: %s fail-stops at %v (DAFS runs; NFS baseline unaffected)\n", kill.node, kill.at)
	}
	fmt.Printf("\n  %-8s  %10s  %9s  %10s  %9s\n", "clients", "dafs MB/s", "srv0 cpu", "nfs MB/s", "srv cpu")
	var failed error
	for _, n := range []int{1, 2, 4, 8} {
		dbw, dcpu, derr := point(n, *servers, *replicas, kill, false)
		nbw, ncpu, _ := point(n, 1, 1, nil, true)
		dafsCell, cpuCell := fmt.Sprintf("%10.1f", dbw), stats.Pct(dcpu)
		if derr != nil {
			dafsCell, cpuCell = fmt.Sprintf("%10s", "failed"), "-"
			failed = derr
		}
		fmt.Printf("  %-8d  %s  %9s  %10.1f  %9s\n", n, dafsCell, cpuCell, nbw, stats.Pct(ncpu))
	}
	switch {
	case failed != nil:
		fmt.Printf("\nDAFS run failed: %v\n(the killed server's stripes had no surviving replica; re-run with -replicas 2)\n", failed)
	case kill != nil:
		fmt.Printf("\n%s died mid-run; writes failed over to the surviving replicas and every byte read back correctly.\n", kill.node)
	case *servers > 1:
		fmt.Printf("\nStriping across %d servers lifts the DAFS ceiling past the single NIC; NFS stays pinned to one server.\n", *servers)
	default:
		fmt.Println("\nDAFS fills the server link at a few percent CPU; NFS saturates the server CPU.")
	}
	if *statsIv > 0 {
		_, _, serr, _, _, reg := pointRun(4, *servers, *replicas, kill, false, false, sim.Time(statsIv.Nanoseconds()))
		if serr != nil && reg == nil {
			log.Fatalf("stats: sampled run failed: %v", serr)
		}
		fmt.Println()
		bench.StatResult{ID: "multiclient", Reg: reg}.SeriesTable().Fprint(os.Stdout)
		if n := len(reg.Dumps()); n > 0 {
			fmt.Printf("\nflight recorder: %d postmortem dump(s) captured (see cmd/mpiostat for full rendering)\n", n)
		}
	}
	if *traceOut != "" {
		_, _, terr, tr, elapsed, _ := pointRun(4, *servers, *replicas, kill, false, true, 0)
		if terr != nil {
			log.Fatalf("trace: traced run failed: %v", terr)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		w := bufio.NewWriter(f)
		if err := tr.WriteChrome(w); err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := w.Flush(); err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Println()
		tr.BreakdownTable(elapsed).Fprint(os.Stdout)
		fmt.Printf("\nwrote %s (open in https://ui.perfetto.dev)\n", *traceOut)
	}
}
