package bench

import (
	"bytes"
	"errors"
	"testing"

	"dafsio/internal/dafs"
)

// TestT16FaultedDeterminism extends the byte-identical-trace guarantee to
// a faulted run: replaying T16's kill schedule (r=2, server1 crashing at
// 10ms) must reproduce the simulated timeline, byte counts, recovery
// metrics, and Chrome trace export exactly.
func TestT16FaultedDeterminism(t *testing.T) {
	r1 := t16Run(2, true, true, 0)
	r2 := t16Run(2, true, true, 0)
	for _, r := range []*t16Result{&r1, &r2} {
		if r.Err != nil || !r.Verified {
			t.Fatalf("faulted run did not complete verified: err=%v verified=%v", r.Err, r.Verified)
		}
	}
	if r1.MBps != r2.MBps || r1.Start != r2.Start || r1.End != r2.End {
		t.Errorf("windows differ: %.3f [%v,%v] vs %.3f [%v,%v]",
			r1.MBps, r1.Start, r1.End, r2.MBps, r2.Start, r2.End)
	}
	if r1.Recovery != r2.Recovery || r1.Retries != r2.Retries {
		t.Errorf("recovery metrics differ: %v/%d vs %v/%d", r1.Recovery, r1.Retries, r2.Recovery, r2.Retries)
	}
	var b1, b2 bytes.Buffer
	if err := r1.Tracer.WriteChrome(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Tracer.WriteChrome(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("two faulted T16 runs produced different Chrome traces")
	}
}

// TestT16TracedMatchesUntraced: fault injection composes with tracing the
// same way everything else does — observationally.
func TestT16TracedMatchesUntraced(t *testing.T) {
	if traced, plain := TracedT16().MBps, t16Run(2, true, false, 0).MBps; traced != plain {
		t.Errorf("T16 bandwidth: traced %v != untraced %v", traced, plain)
	}
}

// TestT16Outcomes pins the experiment's two headline claims: unreplicated,
// the crash is fatal and surfaces as ErrAllReplicasDown; replicated, the
// run completes with verified data and a positive recovery latency.
func TestT16Outcomes(t *testing.T) {
	if r := t16Run(1, true, false, 0); !errors.Is(r.Err, dafs.ErrAllReplicasDown) {
		t.Errorf("r=1 kill: err=%v, want ErrAllReplicasDown", r.Err)
	}
	r := t16Run(2, true, false, 0)
	if r.Err != nil || !r.Verified {
		t.Fatalf("r=2 kill: err=%v verified=%v, want a verified completion", r.Err, r.Verified)
	}
	if r.Recovery <= 0 {
		t.Errorf("r=2 kill: recovery latency %v, want positive", r.Recovery)
	}
	if r.Retries == 0 {
		t.Error("r=2 kill: no redial attempts recorded")
	}
	healthy := t16Run(2, false, false, 0)
	if healthy.Err != nil || !healthy.Verified {
		t.Fatalf("r=2 healthy: err=%v verified=%v", healthy.Err, healthy.Verified)
	}
	if r.MBps >= healthy.MBps {
		t.Errorf("killed run %.1f MB/s not below healthy %.1f MB/s", r.MBps, healthy.MBps)
	}
}
