package mpiio

import (
	"errors"
	"fmt"

	"dafsio/internal/dafs"
	"dafsio/internal/layout"
	"dafsio/internal/sim"
	"dafsio/internal/via"
)

// StripedDAFSDriver binds MPI-IO to a pool of DAFS sessions — one per
// server — with a layout.Striping policy deciding which server holds which
// bytes. A contiguous request is mapped to per-server stripe fragments,
// every fragment is issued as a nonblocking DAFS operation (inline or
// direct per fragment, same discipline as the single-server driver), and
// the completions are aggregated: writes sum their counts, reads report
// the contiguous prefix so EOF mid-stripe keeps POSIX short-read
// semantics. Each server stores one stripe object under the file's name.
//
// With Width == 1 the layout is the identity mapping and every request
// becomes exactly the operation the plain DAFSDriver would issue, so the
// single-server tables are the stripes=1 special case of this driver.
//
// The embedded DAFSDriver (over the pool's first session) supplies the
// transfer-discipline knobs and the registration cache; all sessions of a
// pool share the client's one NIC, so one registration serves every
// per-server fragment of a request.
type StripedDAFSDriver struct {
	*DAFSDriver
	clients  []*dafs.Client
	striping layout.Striping
}

// NewStripedDAFSDriver wraps a session pool, one session per server in
// layout order. The pool must match the policy's width and share one NIC.
func NewStripedDAFSDriver(clients []*dafs.Client, st layout.Striping) *StripedDAFSDriver {
	if err := st.Validate(); err != nil {
		panic(err)
	}
	if len(clients) != st.Width {
		panic(fmt.Sprintf("mpiio: %d sessions for stripe width %d", len(clients), st.Width))
	}
	d := &StripedDAFSDriver{
		DAFSDriver: NewDAFSDriver(clients[0]),
		clients:    clients,
		striping:   st,
	}
	for _, c := range clients {
		if c.NIC() != clients[0].NIC() {
			panic("mpiio: striped session pool spans NICs")
		}
		// Inline fragments must fit every session's negotiated limit.
		if c.MaxInline() < d.DirectThreshold {
			d.DirectThreshold = c.MaxInline()
		}
	}
	return d
}

// Clients returns the session pool in server order.
func (d *StripedDAFSDriver) Clients() []*dafs.Client { return d.clients }

// Striping returns the placement policy.
func (d *StripedDAFSDriver) Striping() layout.Striping { return d.striping }

// Name implements Driver.
func (d *StripedDAFSDriver) Name() string {
	if d.striping.Width == 1 {
		return "dafs"
	}
	return fmt.Sprintf("dafs-striped/%d", d.striping.Width)
}

// Open implements Driver: the file's stripe object is looked up (or
// created) on every server. The per-server Lookups go out concurrently —
// the sessions are independent, so the latency is one round trip rather
// than Width of them — and the Creates for the servers that reported
// ErrNoEnt go out as a second concurrent wave.
func (d *StripedDAFSDriver) Open(p *sim.Proc, name string, mode int) (Handle, error) {
	if err := checkAccessMode(mode); err != nil {
		return nil, err
	}
	lookups := make([]*dafs.NameOp, len(d.clients))
	var startErr error
	for i, c := range d.clients {
		op, err := c.StartLookup(p, name)
		if err != nil {
			startErr = err
			break
		}
		lookups[i] = op
	}
	fhs := make([]dafs.FH, len(d.clients))
	var missing []int // servers that need a Create
	var opErr error
	for i, op := range lookups {
		if op == nil {
			continue
		}
		fh, _, err := op.Wait(p)
		switch {
		case err == nil:
			fhs[i] = fh
		case errors.Is(err, dafs.ErrNoEnt) && mode&ModeCreate != 0:
			missing = append(missing, i)
		default:
			if opErr == nil {
				opErr = err
			}
		}
	}
	if startErr != nil {
		return nil, mapDafsErr(startErr)
	}
	if opErr != nil {
		return nil, mapDafsErr(opErr)
	}
	if mode&ModeExcl != 0 && len(missing) < len(d.clients) {
		return nil, ErrExist
	}
	if len(missing) > 0 {
		creates := make([]*dafs.NameOp, len(missing))
		for j, i := range missing {
			op, err := d.clients[i].StartCreate(p, name)
			if err != nil {
				startErr = err
				break
			}
			creates[j] = op
		}
		for j, op := range creates {
			if op == nil {
				continue
			}
			fh, _, err := op.Wait(p)
			if err != nil {
				if opErr == nil {
					opErr = err
				}
				continue
			}
			fhs[missing[j]] = fh
		}
		if startErr != nil {
			return nil, mapDafsErr(startErr)
		}
		if opErr != nil {
			return nil, mapDafsErr(opErr)
		}
	}
	return &stripedHandle{drv: d, fhs: fhs, name: name, mode: mode}, nil
}

// Delete implements Driver: the stripe object is removed on every server,
// all removals in flight at once.
func (d *StripedDAFSDriver) Delete(p *sim.Proc, name string) error {
	ops := make([]*dafs.Ack, len(d.clients))
	var startErr error
	for i, c := range d.clients {
		op, err := c.StartRemove(p, name)
		if err != nil {
			startErr = err
			break
		}
		ops[i] = op
	}
	missing := 0
	var opErr error
	for _, op := range ops {
		if op == nil {
			continue
		}
		err := op.Wait(p)
		switch {
		case errors.Is(err, dafs.ErrNoEnt):
			missing++
		case err != nil && opErr == nil:
			opErr = err
		}
	}
	if startErr != nil {
		return mapDafsErr(startErr)
	}
	if opErr != nil {
		return mapDafsErr(opErr)
	}
	if missing == len(d.clients) {
		return ErrNoEnt
	}
	return nil
}

type stripedHandle struct {
	drv    *StripedDAFSDriver
	fhs    []dafs.FH // per server, layout order
	name   string
	mode   int
	closed bool
}

func (h *stripedHandle) check(off int64, write bool) error {
	if h.closed {
		return ErrClosed
	}
	if off < 0 {
		return ErrNegative
	}
	if write && h.mode&ModeRdOnly != 0 {
		return ErrReadOnly
	}
	if !write && h.mode&ModeWrOnly != 0 {
		return ErrWriteOnly
	}
	return nil
}

// startFrags maps the request, registers the buffer once if any fragment
// takes the direct path, and issues every fragment as a nonblocking DAFS
// op on its server's session. On an issue failure the already-launched
// fragments are drained (their completions carry no cleanup we can skip)
// before the error is reported.
func (h *stripedHandle) startFrags(p *sim.Proc, off int64, buf []byte, write bool) ([]layout.Fragment, multiOp, *via.Region, error) {
	d := h.drv.DAFSDriver
	frags := h.drv.striping.Map(off, int64(len(buf)))
	var reg *via.Region
	for _, f := range frags {
		if int(f.Len) > d.DirectThreshold {
			reg = d.region(p, buf)
			break
		}
	}
	ops := make(multiOp, 0, len(frags))
	for _, f := range frags {
		c := h.drv.clients[f.Server]
		fh := h.fhs[f.Server]
		var io *dafs.IO
		var err error
		switch {
		case int(f.Len) <= d.DirectThreshold && write:
			io, err = c.StartWrite(p, fh, f.Off, buf[f.BufOff:f.BufOff+f.Len])
		case int(f.Len) <= d.DirectThreshold:
			io, err = c.StartRead(p, fh, f.Off, buf[f.BufOff:f.BufOff+f.Len])
		case write:
			io, err = c.StartWriteDirect(p, fh, f.Off, reg, int(f.BufOff), int(f.Len))
		default:
			io, err = c.StartReadDirect(p, fh, f.Off, reg, int(f.BufOff), int(f.Len))
		}
		if err != nil {
			ops.Wait(p)
			if reg != nil {
				d.release(p, reg)
			}
			return nil, nil, nil, mapDafsErr(err)
		}
		ops = append(ops, &dafsOp{io: io, drv: d})
	}
	return frags, ops, reg, nil
}

// StartRead implements Handle.
func (h *stripedHandle) StartRead(p *sim.Proc, off int64, buf []byte) (AsyncOp, error) {
	if err := h.check(off, false); err != nil {
		return nil, err
	}
	if len(buf) == 0 {
		return doneOp{}, nil
	}
	frags, ops, reg, err := h.startFrags(p, off, buf, false)
	if err != nil {
		return nil, err
	}
	return &stripedReadOp{frags: frags, ops: ops, drv: h.drv.DAFSDriver, reg: reg}, nil
}

// StartWrite implements Handle.
func (h *stripedHandle) StartWrite(p *sim.Proc, off int64, buf []byte) (AsyncOp, error) {
	if err := h.check(off, true); err != nil {
		return nil, err
	}
	if len(buf) == 0 {
		return doneOp{}, nil
	}
	_, ops, reg, err := h.startFrags(p, off, buf, true)
	if err != nil {
		return nil, err
	}
	if reg != nil {
		// As in startList: the registration is released once, after the
		// last fragment completes; multiOp drains every op regardless.
		last := len(ops) - 1
		ops[last] = &dafsOp{io: ops[last].(*dafsOp).io, drv: h.drv.DAFSDriver, reg: reg}
	}
	return ops, nil
}

// stripedReadOp aggregates per-fragment reads with contiguous-prefix
// short-read semantics (a plain multiOp would over-count past EOF holes).
type stripedReadOp struct {
	frags []layout.Fragment
	ops   multiOp
	drv   *DAFSDriver
	reg   *via.Region
}

// Wait implements AsyncOp.
func (o *stripedReadOp) Wait(p *sim.Proc) (int, error) {
	counts := make([]int, len(o.ops))
	var firstErr error
	for i, op := range o.ops {
		n, err := op.Wait(p)
		counts[i] = n
		if firstErr == nil {
			firstErr = err
		}
	}
	if o.reg != nil {
		o.drv.release(p, o.reg)
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return layout.ContiguousCount(o.frags, counts), nil
}

// ReadContig implements Handle.
func (h *stripedHandle) ReadContig(p *sim.Proc, off int64, buf []byte) (int, error) {
	op, err := h.StartRead(p, off, buf)
	if err != nil {
		return 0, err
	}
	return op.Wait(p)
}

// WriteContig implements Handle.
func (h *stripedHandle) WriteContig(p *sim.Proc, off int64, buf []byte) (int, error) {
	op, err := h.StartWrite(p, off, buf)
	if err != nil {
		return 0, err
	}
	return op.Wait(p)
}

// Size implements Handle: the logical size is recovered from the
// per-server stripe-object sizes through the layout's inverse mapping.
// The Getattrs are issued concurrently across the session pool.
func (h *stripedHandle) Size(p *sim.Proc) (int64, error) {
	if h.closed {
		return 0, ErrClosed
	}
	ops := make([]*dafs.AttrOp, len(h.fhs))
	var startErr error
	for i, c := range h.drv.clients {
		op, err := c.StartGetattr(p, h.fhs[i])
		if err != nil {
			startErr = err
			break
		}
		ops[i] = op
	}
	sizes := make([]int64, len(h.fhs))
	var opErr error
	for i, op := range ops {
		if op == nil {
			continue
		}
		attr, err := op.Wait(p)
		if err != nil {
			if opErr == nil {
				opErr = err
			}
			continue
		}
		sizes[i] = attr.Size
	}
	if startErr != nil {
		return 0, mapDafsErr(startErr)
	}
	if opErr != nil {
		return 0, mapDafsErr(opErr)
	}
	return h.drv.striping.LogicalSize(sizes), nil
}

// Resize implements Handle: each server's object is set to its share of
// the logical size, all Setattrs in flight at once.
func (h *stripedHandle) Resize(p *sim.Proc, n int64) error {
	if h.closed {
		return ErrClosed
	}
	if n < 0 {
		return ErrNegative
	}
	ops := make([]*dafs.Ack, len(h.fhs))
	var startErr error
	for i, z := range h.drv.striping.ObjectSizes(n) {
		op, err := h.drv.clients[i].StartSetattr(p, h.fhs[i], z)
		if err != nil {
			startErr = err
			break
		}
		ops[i] = op
	}
	return h.waitAcks(p, ops, startErr)
}

// Sync implements Handle: every server's Fsync is in flight at once.
func (h *stripedHandle) Sync(p *sim.Proc) error {
	if h.closed {
		return ErrClosed
	}
	ops := make([]*dafs.Ack, len(h.fhs))
	var startErr error
	for i, c := range h.drv.clients {
		op, err := c.StartFsync(p, h.fhs[i])
		if err != nil {
			startErr = err
			break
		}
		ops[i] = op
	}
	return h.waitAcks(p, ops, startErr)
}

// waitAcks drains a wave of acknowledgement-only operations. Every
// launched op is waited on even after a failure — the completions recycle
// session credits — and the first error wins, issue failures first.
func (h *stripedHandle) waitAcks(p *sim.Proc, ops []*dafs.Ack, startErr error) error {
	var opErr error
	for _, op := range ops {
		if op == nil {
			continue
		}
		if err := op.Wait(p); err != nil && opErr == nil {
			opErr = err
		}
	}
	if startErr != nil {
		return mapDafsErr(startErr)
	}
	if opErr != nil {
		return mapDafsErr(opErr)
	}
	return nil
}

// Close implements Handle.
func (h *stripedHandle) Close(p *sim.Proc) error {
	if h.closed {
		return nil
	}
	h.closed = true
	if h.mode&ModeDeleteOnClose != 0 {
		return h.drv.Delete(p, h.name)
	}
	return nil
}
