package bench

import (
	"bytes"
	"strings"
	"testing"

	"dafsio/internal/trace"
)

// t17WriteSpans collects the DAFS-layer write spans inside r's measured
// window, grouped by track (one track per client node).
func t17WriteSpans(r TracedResult) map[string][]trace.Span {
	byTrack := make(map[string][]trace.Span)
	for _, s := range r.Tracer.Spans() {
		if s.Layer != trace.LayerDAFS || !strings.HasPrefix(s.Op, "WRITE") {
			continue
		}
		if s.Start < r.Start || s.Start >= r.End {
			continue // warm-up before the ready barrier
		}
		byTrack[s.Track] = append(byTrack[s.Track], s)
	}
	return byTrack
}

// TestT17AggregatorTouchesOneServer pins the domain-alignment invariant at
// the wire: with stripe-aligned file domains, every aggregator's DAFS
// writes in the measured collective go to exactly one server, the width
// aggregators cover all width servers, and non-aggregator ranks issue no
// writes at all.
func TestT17AggregatorTouchesOneServer(t *testing.T) {
	for _, width := range []int{2, 4} {
		r := TracedT17(width)
		byTrack := t17WriteSpans(r)
		if len(byTrack) != width {
			t.Fatalf("width %d: %d tracks issued DAFS writes, want %d aggregators", width, len(byTrack), width)
		}
		covered := make(map[int]bool)
		for track, spans := range byTrack {
			servers := make(map[int]bool)
			for _, s := range spans {
				if s.Server < 0 {
					t.Fatalf("width %d: %s: DAFS write span without a server index: %+v", width, track, s)
				}
				servers[s.Server] = true
				covered[s.Server] = true
			}
			if len(servers) != 1 {
				t.Errorf("width %d: aggregator %s touched %d servers, want exactly 1", width, track, len(servers))
			}
		}
		if len(covered) != width {
			t.Errorf("width %d: aggregators covered %d servers, want all %d", width, len(covered), width)
		}
	}
}

// TestT17BatchRequestBound pins the gather planner's request economy: the
// collective phase moves each aggregator's whole domain with batch
// requests, at most Width x Replicas of them in total (here Replicas = 1),
// instead of one DAFS operation per 128B fragment.
func TestT17BatchRequestBound(t *testing.T) {
	const width = 4
	r := TracedT17(width)
	batch := 0
	for _, spans := range t17WriteSpans(r) {
		for _, s := range spans {
			if s.Op != "WRITE_BATCH" {
				t.Errorf("non-batch DAFS write in the collective phase: %+v", s)
			}
			batch++
		}
	}
	if batch == 0 || batch > width {
		t.Errorf("collective phase issued %d batch requests, want 1..%d", batch, width)
	}
}

// TestT17BatchWinAtWidth pins the headline: the per-server gather plans
// restore the batch win over per-fragment independent I/O at width > 1.
func TestT17BatchWinAtWidth(t *testing.T) {
	for _, width := range []int{2, 4} {
		batch := t17Point(width, methodBatch)
		per := t17Point(width, methodNaive)
		if batch <= per {
			t.Errorf("width %d: batch %.1f MB/s does not beat per-fragment %.1f MB/s", width, batch, per)
		}
	}
}

// TestT17TracedMatchesUntraced pins that tracing T17 is observational and
// that the traced run is deterministic (byte-identical Chrome exports).
func TestT17TracedMatchesUntraced(t *testing.T) {
	r1 := TracedT17(2)
	if plain := t17Point(2, methodTwoPhase); r1.MBps != plain {
		t.Errorf("T17 bandwidth: traced %v != untraced %v", r1.MBps, plain)
	}
	r2 := TracedT17(2)
	var b1, b2 bytes.Buffer
	if err := r1.Tracer.WriteChrome(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Tracer.WriteChrome(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("two T17 runs produced different Chrome traces")
	}
}
